#pragma once

#include <functional>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "storage/table.h"
#include "transform/priority.h"

namespace morph::transform {

/// \brief Shape of the shared initial-population pipeline (paper §3.2).
///
/// Every operator's InitialPopulate() is a sequence of *phases* run through
/// RunPopulatePhase: each phase executes the same body once per worker, with
/// worker w owning source shards (and any hash-partitioned build state)
/// congruent to w modulo the worker count. Records leave each worker through
/// a BatchSink, which amortizes shard-mutex and index traffic via
/// Table::InsertBatch and pays the duty cycle on every flush.
///
/// Design rule carried over from the propagation pipeline: the serial path
/// is the N = 0 case of the same code — zero workers runs the identical
/// phase body inline on the calling thread with a single partition, not a
/// separate legacy implementation.
struct PopulateConfig {
  /// Scan/insert workers. 0 = serial (one inline partition on the caller).
  size_t workers = 0;
  /// Records per BatchSink flush; also the throttle-payment granularity,
  /// matching the serial operators' historical 256-record slices.
  size_t batch_size = 256;
  /// Source-shard scan range [shard_begin, min(shard_end, num_shards)) —
  /// how a staggered tablet transform scopes an operator's populate scan to
  /// one tablet's shard range (storage/tablet.h). The defaults cover the
  /// whole table, which is the non-staggered path unchanged.
  size_t shard_begin = 0;
  size_t shard_end = static_cast<size_t>(-1);
  /// Staggered mode: the targets may already hold earlier tablets' records,
  /// so population must *merge into* existing operator state (the split's
  /// S-side accumulates into stored buckets via Table::Rmw) instead of
  /// assuming it writes first. Off on the whole-table path.
  bool accumulate = false;

  size_t ClampedShardEnd(size_t num_shards) const {
    return shard_end < num_shards ? shard_end : num_shards;
  }
};

class PopulateWorker;

/// \brief Runs one pipeline phase: `body(worker)` once per worker.
///
/// With config.workers == 0 the body runs inline on the calling thread
/// (worker 0 of 1). Otherwise one thread per worker is spawned and joined
/// before returning; the first non-OK Status is returned, and the first
/// exception (a crash failpoint firing on a worker thread, say) is
/// re-thrown on the calling thread — exceptions never cross the
/// std::thread boundary, mirroring the propagator's failure funneling.
/// After the body returns OK, any wall-clock time it has not yet paid to
/// the throttle is paid, so a phase is fully covered by the duty cycle
/// even if it never flushed a sink.
Status RunPopulatePhase(PriorityController* throttle,
                        const PopulateConfig& config,
                        const std::function<Status(PopulateWorker&)>& body);

/// \brief One worker's identity and throttle within a population phase.
///
/// Workers partition two kinds of state by congruence: source *shards*
/// (`for (sh = index(); sh < t->num_shards(); sh += partitions())` — each
/// key lives in exactly one shard, so ranges are disjoint and cover the
/// table) and *hash buckets* of operator build state (`hash % partitions()`
/// names the owning worker). The throttle mark lives on the worker, not on
/// a sink, so a phase with several sinks never pays the same wall time
/// twice.
class PopulateWorker {
 public:
  size_t index() const { return index_; }
  /// Partition count: max(1, config.workers) — 1 on the serial path.
  size_t partitions() const { return partitions_; }
  size_t batch_size() const { return batch_size_; }

  /// \brief Pays the duty cycle for all wall time since the previous
  /// payment (the sleep, if owed, happens here; slept time is not counted
  /// as work).
  void PayThrottle() {
    const int64_t work = Clock::NanosSince(mark_);
    throttle_.OnWorkDone(work);
    mark_ = Clock::Now();
  }

 private:
  friend Status RunPopulatePhase(
      PriorityController* throttle, const PopulateConfig& config,
      const std::function<Status(PopulateWorker&)>& body);

  PopulateWorker(size_t index, size_t partitions, size_t batch_size,
                 PriorityController* controller)
      : index_(index),
        partitions_(partitions),
        batch_size_(batch_size),
        throttle_(controller),
        mark_(Clock::Now()) {}

  const size_t index_;
  const size_t partitions_;
  const size_t batch_size_;
  PriorityController::WorkerThrottle throttle_;
  Clock::TimePoint mark_;
};

/// \brief Per-worker batched sink into one target table.
///
/// Add() buffers; every batch_size records (and on the final Flush) the
/// buffer goes to the table as one grouped batch — one shard-mutex
/// acquisition per destination shard, one index pass — after which the
/// worker pays the duty cycle for everything since its last payment. The
/// sink is how the split's S-side flush, once an unthrottled burst, became
/// throttled for free: all population inserts funnel through here.
class BatchSink {
 public:
  enum class Mode {
    /// Duplicates tolerated (first/stored occurrence wins) — the fuzzy
    /// population default: anomaly duplicates converge via the log.
    kInsert,
    /// Higher-LSN image wins (Table::UpsertBatchLsnGated) — the merge
    /// population's newest-contributor seeding.
    kLsnUpsert,
  };

  BatchSink(storage::Table* target, Mode mode, PopulateWorker* worker)
      : target_(target), mode_(mode), worker_(worker) {
    batch_.reserve(worker_->batch_size());
  }

  /// \brief Buffers one record, flushing when the batch is full.
  Status Add(storage::Record record) {
    batch_.push_back(std::move(record));
    if (batch_.size() >= worker_->batch_size()) return Flush();
    return Status::OK();
  }

  /// \brief Writes the buffered batch (no-op when empty). Must be called
  /// once more after the last Add.
  Status Flush();

 private:
  storage::Table* target_;
  const Mode mode_;
  PopulateWorker* worker_;
  std::vector<storage::Record> batch_;
};

}  // namespace morph::transform
