#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ring_queue.h"
#include "common/status.h"
#include "common/types.h"
#include "transform/op.h"
#include "txn/transform_locks.h"

namespace morph::transform {

/// One routed unit of work: a normalized source-table op plus the lock
/// origin its mirrored locks are tagged with.
struct HandoffItem {
  Op op;
  txn::LockOrigin origin;
};

/// Per-worker diagnostics (mirrors PropagatorWorkerStats without the
/// circular include).
struct HandoffWorkerStats {
  size_t ops_applied = 0;
  size_t max_queue_depth = 0;
};

struct HandoffOptions {
  /// Number of apply worker threads (≥ 1).
  size_t workers = 2;
  /// Per-worker SPSC ring capacity, in records (rounded up to a power of
  /// two by the ring).
  size_t ring_capacity = 1024;
  /// Max records a worker moves out of its ring per pop (one release-store
  /// retires the whole batch).
  size_t pop_batch = 128;
  /// Empty polls a worker spins (yielding) before parking on its condvar.
  /// Kept short: on a saturated 1-core host a spinning worker steals the
  /// reader's timeslice.
  size_t spin_polls = 64;
};

/// \brief The lock-free reader→worker handoff layer of the log propagator
/// (ROADMAP Open item 1): one cache-line-aligned SPSC ring per worker
/// (common/ring_queue.h), a reader-side staging buffer per worker so a whole
/// scan block is published with *one* release-store per worker, and
/// counter-based phase joins instead of per-queue mutex drains.
///
/// **Roles.** Exactly one reader thread calls Stage / FlushStaged /
/// JoinPhase; each worker thread consumes exactly one ring. FloorLsn() and
/// worker_stats() are safe from any thread.
///
/// **Floor scheme.** The mutex path tracked "oldest queued or in-flight
/// LSN" under the queue lock; with no lock, each worker instead publishes
/// two monotone counters and a monotone LSN:
///
///  - `pushed`    — records handed to this worker (written by the reader,
///                  release, *before* the propagator advances next_lsn);
///  - `applied`   — records the worker has finished with (release);
///  - `applied_upto` — the highest LSN fully landed (release, stored before
///                  `applied` is bumped).
///
/// A worker's floor is `applied_upto + 1` while `applied < pushed`, else
/// LSN-max. Per-worker LSNs are monotone (the reader stages in scan order,
/// the ring is FIFO), so "applied_upto = X" implies everything ≤ X landed —
/// a stale read only lowers the floor, never raises it past an in-flight
/// op. A third thread could read a stale-low `pushed` and conclude idle,
/// but TransformCoordinator::propagated_lsn() loads next_lsn *before* the
/// floor, and every push below next_lsn happens-before the next_lsn
/// advance, so the min(next_lsn, floor) watermark that gates
/// Wal::TruncateBefore stays conservative — the same argument the mutex
/// path relied on.
///
/// **Failure funnel.** Apply outcomes are routed through the propagator's
/// callbacks (RecordFailure / RecordException); once the shared `failed`
/// flag is up, workers drain-and-discard (counters keep moving so joins
/// terminate) and FlushStaged discards instead of pushing. Exceptions never
/// cross a thread boundary: workers funnel them, the reader rethrows via
/// the propagator's TakeFailure.
///
/// Failpoint: `transform.handoff.push` fires in FlushStaged, on the reader
/// thread, only when records are actually being handed off — the lock-free
/// analogue of the mutex path's reader-side sites for the crash matrix.
class WorkerHandoff {
 public:
  using ApplyFn = std::function<Status(const HandoffItem&)>;
  using FailureFn = std::function<void(const Status&)>;
  using ExceptionFn = std::function<void(std::exception_ptr)>;

  /// `failed` is the propagator's shared drain-and-discard flag; it must
  /// outlive this object. Workers start immediately.
  WorkerHandoff(HandoffOptions options, ApplyFn apply, FailureFn on_failure,
                ExceptionFn on_exception, const std::atomic<bool>* failed);
  ~WorkerHandoff();

  WorkerHandoff(const WorkerHandoff&) = delete;
  WorkerHandoff& operator=(const WorkerHandoff&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Reader only: buffers `item` for `worker` (no publication yet).
  void Stage(size_t worker, HandoffItem item);

  /// Reader only: publishes every staged run to its worker's ring — one
  /// release-store per worker per call — waking parked workers. Spins with
  /// backpressure accounting when a ring is full. Returns the injected
  /// status of the `transform.handoff.push` failpoint, if armed (staged
  /// items are then discarded, drain-and-discard style). No-op when nothing
  /// is staged.
  Status FlushStaged();

  /// Reader only: FlushStaged, then waits until every worker has consumed
  /// everything pushed to it (applied == pushed). This is the barrier ops
  /// and end-of-range use; it terminates even in failed mode because
  /// discarded records still advance `applied`.
  Status JoinPhase();

  /// Any thread: min over busy workers of (highest fully-applied LSN + 1);
  /// LSN-max when all workers are idle. See the floor scheme above.
  Lsn FloorLsn() const;

  /// Any thread: per-worker diagnostics snapshot (relaxed atomics).
  std::vector<HandoffWorkerStats> worker_stats() const;

 private:
  struct Worker {
    explicit Worker(size_t ring_capacity) : ring(ring_capacity) {}

    SpscRingQueue<HandoffItem> ring;

    /// Reader-side staging buffer (reader-thread private).
    std::vector<HandoffItem> staged;

    /// Floor/join counters — see the class comment for the protocol.
    alignas(SpscRingQueue<HandoffItem>::kCacheLine)
        std::atomic<uint64_t> pushed{0};
    alignas(SpscRingQueue<HandoffItem>::kCacheLine)
        std::atomic<uint64_t> applied{0};
    std::atomic<Lsn> applied_upto{kInvalidLsn};

    /// Diagnostics (relaxed). ops_applied counts *successful* applies;
    /// max_queue_depth is a reader-side post-flush ring occupancy high-water
    /// mark.
    std::atomic<uint64_t> ops_applied{0};
    std::atomic<uint64_t> max_queue_depth{0};

    /// Parking: a worker that found its ring empty after spin_polls yields
    /// sets `parked` and waits (bounded) on the condvar; the reader
    /// notifies only when it observes `parked`, so the common case pushes
    /// without touching the mutex. A seq_cst fence on both sides orders the
    /// parked-store/ring-check against the push/parked-check (the classic
    /// flag-vs-data store-load race); the bounded wait caps any residual
    /// window at one timeout.
    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<bool> parked{false};

    std::thread thread;
  };

  void WorkerLoop(Worker* w);
  void WakeIfParked(Worker* w);
  void DiscardStaged();

  const HandoffOptions options_;
  const ApplyFn apply_;
  const FailureFn on_failure_;
  const ExceptionFn on_exception_;
  const std::atomic<bool>* failed_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  /// Total records currently staged across workers (reader-thread private;
  /// lets FlushStaged no-op without touching per-worker buffers).
  size_t staged_total_ = 0;
};

}  // namespace morph::transform
