#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace morph::transform {

/// \brief Duty-cycle throttle making the transformation a tunable
/// low-priority background process.
///
/// The paper runs its reorganizer at an adjustable priority and shows
/// (Figure 4d) the interference/completion-time trade-off, including a
/// priority floor below which propagation never catches up with log
/// generation. The engine is a single process, so "priority" is modelled as
/// a duty cycle: after each slice of propagation work taking `w` µs, the
/// propagator sleeps `w * (1 - p) / p` µs, giving it a fraction `p` of
/// wall-clock time. Sleeps are capped so a priority change takes effect
/// quickly.
///
/// With the parallel propagation pipeline, the duty cycle gates the *reader
/// stage only* (the coordinator thread scanning and dispatching log
/// batches): apply workers merely drain what the reader admits, so
/// throttling the reader throttles the whole pipeline regardless of worker
/// count.
class PriorityController {
 public:
  explicit PriorityController(double priority = 1.0) { set_priority(priority); }

  /// \brief Sets the duty cycle, clamped to [0.001, 1.0].
  void set_priority(double p) {
    priority_.store(std::clamp(p, 0.001, 1.0), std::memory_order_relaxed);
  }

  double priority() const { return priority_.load(std::memory_order_relaxed); }

  /// \brief Reports a completed work slice of `work_nanos`; sleeps to
  /// maintain the duty cycle.
  ///
  /// Work slices can be sub-microsecond (a batch of log records against an
  /// in-memory table), so the owed sleep is accumulated as a debt and paid
  /// once it reaches a schedulable quantum — a naive per-slice sleep would
  /// round down to zero and silently run at full priority.
  ///
  /// The payment runs in capped chunks *until the debt is cleared*. Paying
  /// at most one chunk per call (an earlier revision did) silently ran the
  /// transformation at `w / (w + 50 ms)` instead of `p` whenever a slice
  /// owed more than one chunk — at p = 0.01 a 5 ms slice owes 495 ms, so a
  /// single 50 ms payment left the achieved duty ~9x the requested one.
  /// The chunk cap exists only so a *raised* priority takes effect within
  /// 50 ms; the loop re-reads the priority between chunks and forgives the
  /// remaining debt when it was raised, since that debt was priced at the
  /// old priority.
  void OnWorkDone(int64_t work_nanos) { PayInto(&sleep_debt_nanos_, work_nanos); }

  /// \brief Per-worker throttle handle for parallel stages (the initial-
  /// population pipeline's scan/insert workers). Each handle owns a private
  /// sleep debt — preserving the single-payer-per-debt contract the
  /// controller's own debt relies on — while work and sleep totals aggregate
  /// into the shared controller's atomics. Every worker independently
  /// sleeping (1 - p) / p of its own work keeps the *group's* duty
  /// (totals().achieved()) at p in any interleaving: the ratio holds per
  /// worker, so it holds for the sum.
  class WorkerThrottle {
   public:
    /// \param controller shared controller; nullptr = unthrottled.
    explicit WorkerThrottle(PriorityController* controller)
        : controller_(controller) {}

    void OnWorkDone(int64_t work_nanos) {
      if (controller_ != nullptr) {
        controller_->PayInto(&sleep_debt_nanos_, work_nanos);
      }
    }

   private:
    PriorityController* controller_;
    double sleep_debt_nanos_ = 0;
  };

  /// \brief Cumulative work/sleep accounting, readable from any thread.
  /// `achieved()` is the realized duty cycle; compare against `priority()`
  /// (the requested one) over a snapshot delta to judge throttle fidelity.
  struct DutyTotals {
    int64_t work_nanos = 0;
    int64_t slept_nanos = 0;
    double achieved() const {
      const int64_t wall = work_nanos + slept_nanos;
      return wall <= 0 ? 1.0
                       : static_cast<double>(work_nanos) /
                             static_cast<double>(wall);
    }
  };

  DutyTotals totals() const {
    return {work_nanos_total_.load(std::memory_order_relaxed),
            slept_nanos_total_.load(std::memory_order_relaxed)};
  }

 private:
  /// The debt-payment loop shared by OnWorkDone (paying the controller's
  /// own debt) and WorkerThrottle (paying a worker-private debt). `*debt`
  /// must be owned by the calling thread — that is the single-payer
  /// contract; only the totals are shared (atomics).
  void PayInto(double* debt, int64_t work_nanos) {
    if (work_nanos <= 0) return;
    work_nanos_total_.fetch_add(work_nanos, std::memory_order_relaxed);
    const double p = priority();
    if (p >= 1.0) {
      *debt = 0;  // stale debt priced at a lower priority
      return;
    }
    *debt += static_cast<double>(work_nanos) * (1.0 - p) / p;
    constexpr double kMinSleepNanos = 100'000.0;      // 100 µs quantum
    constexpr double kMaxSleepNanos = 50'000'000.0;   // stay responsive
    while (*debt >= kMinSleepNanos) {
      const double chunk = std::min(*debt, kMaxSleepNanos);
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(static_cast<int64_t>(chunk)));
      slept_nanos_total_.fetch_add(static_cast<int64_t>(chunk),
                                   std::memory_order_relaxed);
      *debt -= chunk;
      if (priority() > p) {
        *debt = 0;
        break;
      }
    }
  }

  std::atomic<double> priority_{1.0};
  /// Owed-but-unpaid sleep; only touched by the thread driving the work —
  /// the pipeline's reader stage (the coordinator thread) during
  /// propagation, or the populating thread during a serial initial scan.
  /// Parallel population workers each pay into their own WorkerThrottle
  /// debt instead; propagation apply workers never call OnWorkDone.
  double sleep_debt_nanos_ = 0;
  std::atomic<int64_t> work_nanos_total_{0};
  std::atomic<int64_t> slept_nanos_total_{0};
};

}  // namespace morph::transform
