#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace morph::transform {

/// \brief Duty-cycle throttle making the transformation a tunable
/// low-priority background process.
///
/// The paper runs its reorganizer at an adjustable priority and shows
/// (Figure 4d) the interference/completion-time trade-off, including a
/// priority floor below which propagation never catches up with log
/// generation. The engine is a single process, so "priority" is modelled as
/// a duty cycle: after each slice of propagation work taking `w` µs, the
/// propagator sleeps `w * (1 - p) / p` µs, giving it a fraction `p` of
/// wall-clock time. Sleeps are capped so a priority change takes effect
/// quickly.
///
/// With the parallel propagation pipeline, the duty cycle gates the *reader
/// stage only* (the coordinator thread scanning and dispatching log
/// batches): apply workers merely drain what the reader admits, so
/// throttling the reader throttles the whole pipeline regardless of worker
/// count.
class PriorityController {
 public:
  explicit PriorityController(double priority = 1.0) { set_priority(priority); }

  /// \brief Sets the duty cycle, clamped to [0.001, 1.0].
  void set_priority(double p) {
    priority_.store(std::clamp(p, 0.001, 1.0), std::memory_order_relaxed);
  }

  double priority() const { return priority_.load(std::memory_order_relaxed); }

  /// \brief Reports a completed work slice of `work_nanos`; sleeps to
  /// maintain the duty cycle.
  ///
  /// Work slices can be sub-microsecond (a batch of log records against an
  /// in-memory table), so the owed sleep is accumulated as a debt and paid
  /// once it reaches a schedulable quantum — a naive per-slice sleep would
  /// round down to zero and silently run at full priority.
  ///
  /// The payment runs in capped chunks *until the debt is cleared*. Paying
  /// at most one chunk per call (an earlier revision did) silently ran the
  /// transformation at `w / (w + 50 ms)` instead of `p` whenever a slice
  /// owed more than one chunk — at p = 0.01 a 5 ms slice owes 495 ms, so a
  /// single 50 ms payment left the achieved duty ~9x the requested one.
  /// The chunk cap exists only so a *raised* priority takes effect within
  /// 50 ms; the loop re-reads the priority between chunks and forgives the
  /// remaining debt when it was raised, since that debt was priced at the
  /// old priority.
  void OnWorkDone(int64_t work_nanos) {
    if (work_nanos <= 0) return;
    work_nanos_total_.fetch_add(work_nanos, std::memory_order_relaxed);
    const double p = priority();
    if (p >= 1.0) {
      sleep_debt_nanos_ = 0;  // stale debt priced at a lower priority
      return;
    }
    sleep_debt_nanos_ += static_cast<double>(work_nanos) * (1.0 - p) / p;
    constexpr double kMinSleepNanos = 100'000.0;      // 100 µs quantum
    constexpr double kMaxSleepNanos = 50'000'000.0;   // stay responsive
    while (sleep_debt_nanos_ >= kMinSleepNanos) {
      const double chunk = std::min(sleep_debt_nanos_, kMaxSleepNanos);
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(static_cast<int64_t>(chunk)));
      slept_nanos_total_.fetch_add(static_cast<int64_t>(chunk),
                                   std::memory_order_relaxed);
      sleep_debt_nanos_ -= chunk;
      if (priority() > p) {
        sleep_debt_nanos_ = 0;
        break;
      }
    }
  }

  /// \brief Cumulative work/sleep accounting, readable from any thread.
  /// `achieved()` is the realized duty cycle; compare against `priority()`
  /// (the requested one) over a snapshot delta to judge throttle fidelity.
  struct DutyTotals {
    int64_t work_nanos = 0;
    int64_t slept_nanos = 0;
    double achieved() const {
      const int64_t wall = work_nanos + slept_nanos;
      return wall <= 0 ? 1.0
                       : static_cast<double>(work_nanos) /
                             static_cast<double>(wall);
    }
  };

  DutyTotals totals() const {
    return {work_nanos_total_.load(std::memory_order_relaxed),
            slept_nanos_total_.load(std::memory_order_relaxed)};
  }

 private:
  std::atomic<double> priority_{1.0};
  /// Owed-but-unpaid sleep; only touched by the thread driving the work —
  /// the pipeline's reader stage (the coordinator thread) during
  /// propagation, or the populating thread during the initial scan. Apply
  /// workers never call OnWorkDone.
  double sleep_debt_nanos_ = 0;
  std::atomic<int64_t> work_nanos_total_{0};
  std::atomic<int64_t> slept_nanos_total_{0};
};

}  // namespace morph::transform
