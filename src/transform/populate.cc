#include "transform/populate.h"

#include <exception>
#include <mutex>
#include <thread>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace morph::transform {

Status BatchSink::Flush() {
  if (batch_.empty()) return Status::OK();
  // One deterministic site per flush, on whatever thread drives the sink —
  // the crash matrix uses it to kill population mid-batch on both the
  // serial and the parallel rows.
  MORPH_FAILPOINT("transform.populate.batch");
  const size_t n = batch_.size();
  const auto t0 = Clock::Now();
  const auto result = mode_ == Mode::kLsnUpsert
                          ? target_->UpsertBatchLsnGated(std::move(batch_))
                          : target_->InsertBatch(std::move(batch_));
  batch_.clear();  // moved-from: restore a defined empty state
  batch_.reserve(worker_->batch_size());
  if (!result.ok()) return result.status();
  MORPH_HISTOGRAM_NANOS("transform.populate.insert_nanos",
                        Clock::NanosSince(t0));
  MORPH_HISTOGRAM_NANOS("transform.populate.batch_records",
                        static_cast<int64_t>(n));
  MORPH_COUNTER_ADD("transform.populate.records", static_cast<int64_t>(n));
  // Pay for the whole slice since the worker's last payment: the scan and
  // operator work that filled this batch, plus the insert itself.
  worker_->PayThrottle();
  return Status::OK();
}

Status RunPopulatePhase(PriorityController* throttle,
                        const PopulateConfig& config,
                        const std::function<Status(PopulateWorker&)>& body) {
  const size_t batch = config.batch_size > 0 ? config.batch_size : 256;
  if (config.workers == 0) {
    // Serial = the N = 0 case: same body, inline, one partition. Exceptions
    // propagate naturally (we are already on the caller's thread).
    PopulateWorker worker(0, 1, batch, throttle);
    const Status st = body(worker);
    if (st.ok()) worker.PayThrottle();
    return st;
  }

  // Parallel: one thread per worker. The first failure of either kind wins;
  // exceptions are funneled through an exception_ptr and re-thrown here so
  // a crash failpoint firing on a worker behaves exactly like one firing on
  // the coordinator thread (the crash matrix catches it via fut.get()).
  std::mutex err_mu;
  Status first_error;
  std::exception_ptr first_exception;
  std::vector<std::thread> threads;
  threads.reserve(config.workers);
  for (size_t i = 0; i < config.workers; ++i) {
    threads.emplace_back([&, i] {
      PopulateWorker worker(i, config.workers, batch, throttle);
      Status st;
      try {
        st = body(worker);
      } catch (...) {
        std::unique_lock lock(err_mu);
        if (!first_exception) first_exception = std::current_exception();
        return;
      }
      if (st.ok()) {
        worker.PayThrottle();
      } else {
        std::unique_lock lock(err_mu);
        if (first_error.ok()) first_error = st;
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_exception) std::rethrow_exception(first_exception);
  return first_error;
}

}  // namespace morph::transform
