#pragma once

#include <atomic>
#include <string>

#include "engine/database.h"
#include "transform/operator_rules.h"

namespace morph::transform {

/// \brief Routing predicate of a horizontal split: which target a T-row
/// belongs to. Kept as a plain (column, comparator, operand) triple so a
/// specification is data, not code.
struct RoutePredicate {
  enum class Comparator { kLt, kLe, kGt, kGe, kEq, kNe };

  std::string column;
  Comparator comparator = Comparator::kLt;
  Value operand;

  bool Eval(const Value& v) const {
    switch (comparator) {
      case Comparator::kLt:
        return v < operand;
      case Comparator::kLe:
        return v <= operand;
      case Comparator::kGt:
        return v > operand;
      case Comparator::kGe:
        return v >= operand;
      case Comparator::kEq:
        return v == operand;
      case Comparator::kNe:
        return v != operand;
    }
    return false;
  }
};

/// \brief Specification of a horizontal (selection) split: T → R, S where
/// R = σ_pred(T) and S = σ_¬pred(T). The inverse of MergeRules; together
/// they answer the paper's §7 call for more relational operators (e.g.
/// moving cold rows into an archive partition without downtime).
struct HorizontalSplitSpec {
  std::string t_table;
  RoutePredicate predicate;  ///< rows satisfying it go to R
  std::string r_name = "t_match";
  std::string s_name = "t_rest";
};

/// \brief Horizontal split propagation rules.
///
/// Every target record is a verbatim copy of one T record, so per-record
/// LSNs are valid state identifiers and the rules are LSN-gated redos with
/// *routing*:
///
///  - insert t(k): insert into the predicate's side;
///  - delete t(k): delete k from whichever side holds an older copy;
///  - update t(k): locate the current copy (either side), apply the changed
///    columns, and re-route — an update that flips the predicate moves the
///    record across targets (delete + insert), the analogue of the vertical
///    split's split-attribute migration.
///
/// Fuzzy anomalies can transiently leave k on both sides (scan caught the
/// record pre- and post-move); the rules always clean the stale side under
/// its own LSN gate, so the tables converge.
class HorizontalSplitRules : public OperatorRules {
 public:
  static Result<std::unique_ptr<HorizontalSplitRules>> Make(
      engine::Database* db, HorizontalSplitSpec spec);

  bool IsSource(TableId id) const override { return id == t_src_->id(); }
  Status Prepare() override;
  Status InitialPopulate() override;
  Status Apply(const Op& op, std::vector<txn::RecordId>* affected) override;

  /// Both targets are keyed by T's primary key and every rule (including a
  /// predicate-flipping migration's delete + insert pair) touches only
  /// records with the op's own key, so per-T-key LSN order is sufficient.
  RouteKey RoutingKey(const Op& op) const override {
    return RouteKey::Of(op.key);
  }

  std::vector<txn::RecordId> AffectedTargets(TableId table,
                                             const Row& pk) override;
  std::vector<std::shared_ptr<storage::Table>> Targets() const override {
    return {r_, s_};
  }
  std::vector<std::shared_ptr<storage::Table>> Sources() const override {
    return {t_src_};
  }
  Status DropTargets() override;

  /// Targets are verbatim T-keyed copies: every rule touches only records
  /// with the op's own key (see RoutingKey), and both sides preserve the
  /// source primary key, so the operator decomposes by hash-range tablet
  /// and both targets stay tablet-aligned.
  bool SupportsStaggeredTablets() const override { return true; }

  const std::shared_ptr<storage::Table>& r_table() const { return r_; }
  const std::shared_ptr<storage::Table>& s_table() const { return s_; }

  struct Counters {
    size_t ops_applied = 0;
    size_t ops_ignored = 0;
    size_t migrations = 0;  ///< updates that crossed the predicate
  };
  Counters counters() const {
    return {counters_.ops_applied.load(), counters_.ops_ignored.load(),
            counters_.migrations.load()};
  }

 private:
  HorizontalSplitRules(engine::Database* db, HorizontalSplitSpec spec,
                       std::shared_ptr<storage::Table> t, size_t pred_col)
      : db_(db), spec_(std::move(spec)), t_src_(std::move(t)),
        pred_col_(pred_col) {}

  storage::Table* Route(const Row& row) const {
    return spec_.predicate.Eval(row[pred_col_]) ? r_.get() : s_.get();
  }
  storage::Table* Other(storage::Table* side) const {
    return side == r_.get() ? s_.get() : r_.get();
  }

  engine::Database* db_;
  HorizontalSplitSpec spec_;
  std::shared_ptr<storage::Table> t_src_;
  std::shared_ptr<storage::Table> r_;
  std::shared_ptr<storage::Table> s_;
  size_t pred_col_ = 0;

  /// Bumped from concurrent propagation workers; counters() snapshots.
  struct {
    std::atomic<size_t> ops_applied{0};
    std::atomic<size_t> ops_ignored{0};
    std::atomic<size_t> migrations{0};
  } counters_;
};

}  // namespace morph::transform
