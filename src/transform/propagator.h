#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "transform/adaptive.h"
#include "transform/handoff.h"
#include "transform/op.h"
#include "transform/operator_rules.h"
#include "transform/priority.h"
#include "transform/table_id_set.h"
#include "txn/transform_locks.h"
#include "wal/wal.h"

namespace morph::transform {

/// How ops travel from the reader to the apply workers.
enum class PropagatorHandoff : uint8_t {
  /// Mutex-guarded bounded deques with condvars — the original PR 2
  /// pipeline, kept as the differential-test reference and the bench
  /// baseline.
  kMutex,
  /// Lock-free cache-line-aligned SPSC rings with batched publication and
  /// counter-based joins (transform/handoff.h). The default.
  kRing,
};

struct PropagatorConfig {
  /// Number of parallel apply workers. 0 = serial: the identical pipeline
  /// code runs with one *inline* worker on the reader (coordinator) thread —
  /// there is no separate serial implementation to drift out of sync.
  size_t workers = 0;
  /// Log records copied out of the WAL per reader batch.
  size_t batch_size = 512;
  /// Bounded per-worker queue capacity, in records.
  size_t queue_capacity = 1024;
  /// Mirror source-table locks onto the transformed tables (§3.3).
  bool maintain_locks = true;
  /// Reader→worker handoff mechanism (ignored when workers == 0).
  PropagatorHandoff handoff = PropagatorHandoff::kRing;
  /// Adaptive mode (`propagate_workers = auto`): sample records/sec per
  /// batch and collapse to the serial inline path whenever parallelism
  /// loses, re-probing periodically (transform/adaptive.h). `workers` is
  /// then the parallel mode's worker count.
  bool adaptive = false;
  /// Probe/exploit window shape for adaptive mode; parallel_workers is
  /// overwritten from `workers`.
  AdaptiveController::Options adaptive_options;
};

/// \brief Per-worker diagnostics, snapshotted into TransformStats.
///
/// A *snapshot*: the live values are relaxed atomics inside the pipeline
/// (see LogPropagator::worker_stats), so snapshotting is safe from any
/// thread at any time — including a metrics/monitoring thread sampling
/// while workers are still applying ops.
struct PropagatorWorkerStats {
  size_t ops_applied = 0;
  size_t max_queue_depth = 0;
};

/// \brief The log-propagation pipeline (paper §3.3), factored out of
/// TransformCoordinator so the propagation path scales with cores.
///
/// Three stages:
///
///  1. **Reader** (the calling thread): scans the WAL in bounded LSN batches
///     (Wal::ScanInto — one shared-lock acquisition per batch, so workers
///     never touch the log's lock), filters for source-table records, and
///     normalizes them into Ops. Priority duty-cycle throttling gates this
///     stage only; workers simply drain what the reader admits.
///  2. **Partitioner** (inline in the reader): routes each data record to
///     one of N workers by hashing the operator-chosen
///     OperatorRules::RoutingKey. Ops whose keys are equal hash to the same
///     worker and therefore apply in LSN order — the per-record order that
///     rules 1–11 and Theorem 1 assume. Barrier-keyed ops drain every
///     worker, then apply inline on the reader thread. With the ring
///     handoff the whole scan block is *staged* per worker and published
///     with one release-store per worker (WorkerHandoff::FlushStaged);
///     with the mutex handoff each op takes the worker's queue lock.
///  3. **Workers**: N threads applying ops via OperatorRules::Apply and
///     mirroring locks via TransformLockTable::AddTransferred — popping
///     bounded mutex deques (kMutex) or SPSC rings in batches (kRing).
///
/// **Watermark.** Each worker publishes a floor: no op below it is still
/// queued or in flight (LSN-max when idle). FloorLsn() is the minimum
/// across workers; everything below min(reader position, FloorLsn()) has
/// been fully applied, which is what keeps Wal::TruncateBefore safe. The
/// mutex path tracks the oldest queued LSN under the queue lock; the ring
/// path derives the floor from monotone pushed/applied counters (see
/// transform/handoff.h for the memory-order argument).
///
/// **Completion barrier.** kCommit/kTxnEnd must not release a transaction's
/// mirrored locks until every one of its ops has been applied (they all
/// have lower LSNs). Instead of a full drain per completion record — which
/// would serialize the pipeline on every commit — releases are *deferred*:
/// queued as (lsn, txn) and flushed once FloorLsn() has passed their LSN
/// (checked per batch, and unconditionally after the end-of-range drain).
/// kCcBegin/kCcOk genuinely drain all workers and then run
/// OnControlRecord inline: the CC verdict must observe every lower-LSN op,
/// or a late-arriving disturbance would be missed (§5.3).
///
/// **Adaptive mode.** With config.adaptive, an AdaptiveController picks 0
/// or N workers per batch; a parallel→serial transition drains the workers
/// and flushes every deferred release first, so the serial path always
/// starts from the fully-applied state it assumes. `propagate_workers =
/// auto` therefore tracks max(serial, parallel) minus a few percent of
/// probing.
///
/// **Failure.** A worker that gets a non-OK Status (or an exception — the
/// deterministic failpoint "transform.propagate.worker" throws
/// CrashException in crash tests) records it, flips the pipeline into a
/// drain-and-discard mode, and the reader rethrows/returns it from
/// PropagateRange on its own thread — exceptions never cross a std::thread
/// boundary. The ring path adds the reader-side site
/// "transform.handoff.push", firing whenever staged records are published.
///
/// Thread safety: PropagateRange must be called from one thread at a time
/// (the coordinator thread). FloorLsn() and stats accessors are safe from
/// any thread.
class LogPropagator {
 public:
  LogPropagator(wal::Wal* wal, OperatorRules* rules,
                txn::TransformLockTable* tlocks, PriorityController* priority,
                PropagatorConfig config);
  ~LogPropagator();

  LogPropagator(const LogPropagator&) = delete;
  LogPropagator& operator=(const LogPropagator&) = delete;

  /// \brief Installs the source-table filter. Must be called after the
  /// operator's Prepare(), before the first PropagateRange(). `source_ids`
  /// is in OperatorRules::Sources() order: the first entry gets
  /// LockOrigin::kSource0, any other kSource1.
  void SetSources(const std::vector<TableId>& source_ids);

  /// \brief Installs (or clears, with nullptr) a per-record data filter for
  /// staggered tablet propagation: a source-table data record for which the
  /// predicate returns false is skipped (counted in
  /// `transform.tablet.ops_skipped`), exactly as if it belonged to a
  /// non-source table. Completion/CC records are unaffected. Reader-thread
  /// only; must not be changed while a PropagateRange is in flight.
  void SetRecordFilter(std::function<bool(const wal::LogRecord&)> filter) {
    record_filter_ = std::move(filter);
  }

  /// \brief When false, kCommit/kTxnEnd records are ignored instead of
  /// releasing the transaction's mirrored locks. A staggered tablet's
  /// latched sync pass runs with completions off: it re-reads a window the
  /// global stream will read again, and releasing a transaction there would
  /// drop locks covering its not-yet-applied ops on *other* tablets.
  /// Reader-thread only, default true.
  void set_process_completions(bool process) {
    process_completions_ = process;
  }

  /// \brief Processes log records [from, to]; returns the count processed.
  /// On return every processed op has been fully applied (workers drained)
  /// and every deferred lock release flushed. `next_lsn` is kept at the
  /// reader's position (the next LSN to read) throughout. `throttled`
  /// applies the priority duty cycle to the reader between batches.
  /// `cancel` (optional) is polled between batches; returning true stops
  /// early after a drain.
  Result<size_t> PropagateRange(Lsn from, Lsn to, bool throttled,
                                std::atomic<Lsn>* next_lsn,
                                const std::function<bool()>& cancel);

  /// \brief Min-across-workers watermark: no op with an LSN below this is
  /// still queued or in flight. LSN-max when all workers are idle.
  Lsn FloorLsn() const;

  /// Apply worker threads this pipeline owns (0 when serial).
  size_t num_workers() const {
    return handoff_ ? handoff_->num_workers() : workers_.size();
  }

  /// The handoff mechanism in use (meaningful when num_workers() > 0).
  PropagatorHandoff handoff_kind() const { return config_.handoff; }

  /// The adaptive controller, or nullptr when not in adaptive mode.
  const AdaptiveController* adaptive() const { return adaptive_.get(); }

  /// \brief Total ops applied (all workers + inline).
  size_t ops_applied() const {
    return ops_applied_.load(std::memory_order_relaxed);
  }

  /// \brief Per-worker diagnostics. Entry 0 is the reader's inline worker
  /// (all ops when serial, barrier ops when parallel), followed by one
  /// entry per queue worker. Safe from any thread while the pipeline is
  /// running: every field is read from a relaxed atomic, never from state a
  /// worker mutates under its queue lock. (An earlier revision kept the
  /// inline counters as plain fields "owned by the reader thread", which
  /// made any cross-thread snapshot — a monitoring thread, a stats dump
  /// racing an abort — a data race under TSan.)
  std::vector<PropagatorWorkerStats> worker_stats() const;

 private:
  using Item = HandoffItem;

  struct Worker {
    mutable std::mutex mu;
    std::condition_variable cv_nonempty;  ///< wakes the worker
    std::condition_variable cv_space;     ///< wakes the reader (space/drained)
    std::deque<Item> queue;               ///< FIFO, pushed in LSN order
    bool busy = false;                    ///< an op is being applied
    /// LSN of the oldest queued/in-flight op; LSN-max when idle. Updated
    /// under mu, stored atomically so FloorLsn() never takes queue locks.
    std::atomic<Lsn> floor{std::numeric_limits<Lsn>::max()};
    /// Diagnostics, relaxed atomics so worker_stats() is lock- and
    /// race-free from any thread. ops_applied is written by the worker
    /// thread; max_queue_depth only by the reader (single writer each).
    std::atomic<size_t> ops_applied{0};
    std::atomic<size_t> max_queue_depth{0};
    std::thread thread;
  };

  void WorkerLoop(Worker* w);
  /// Handles one log record (data op / txn completion / CC bracket).
  Status ProcessRecord(const wal::LogRecord& rec);
  /// The apply step shared by workers and the serial inline path.
  Status ApplyOp(const Op& op, txn::LockOrigin origin);
  /// Routes one data op: hash-partition to a worker (stage or enqueue), or
  /// (barrier / serial) drain + apply inline. Inline application propagates
  /// exceptions on the reader thread.
  Status DispatchData(Op op, txn::LockOrigin origin);
  void Enqueue(size_t worker, Item item);
  /// Blocks until every mutex-path worker queue is empty and no op is in
  /// flight (kMutex only).
  void WaitDrained();
  /// Handoff-agnostic barrier: flush anything staged, then wait until every
  /// worker has applied everything handed to it. Returns the ring flush
  /// status (a "transform.handoff.push" injected error surfaces here).
  Status DrainWorkers();
  /// Applies deferred lock releases whose LSN the floor has passed
  /// (`all` forces everything — only valid after DrainWorkers()).
  void FlushReleases(bool all);
  void RecordFailure(const Status& st);
  void RecordException(std::exception_ptr e);
  /// Rethrows/returns a worker-recorded failure, if any (reader thread).
  Status TakeFailure();

  wal::Wal* wal_;
  OperatorRules* rules_;
  txn::TransformLockTable* tlocks_;
  PriorityController* priority_;
  const PropagatorConfig config_;

  TableIdSet sources_;
  TableId primary_source_ = 0;  ///< LockOrigin::kSource0

  /// Staggered-tablet record filter (null = pass everything) and the
  /// completion-processing toggle. Reader-thread only.
  std::function<bool(const wal::LogRecord&)> record_filter_;
  bool process_completions_ = true;

  /// kMutex path workers (empty when serial or kRing).
  std::vector<std::unique_ptr<Worker>> workers_;
  /// kRing path (null when serial or kMutex).
  std::unique_ptr<WorkerHandoff> handoff_;
  /// Adaptive mode controller (null unless config.adaptive).
  std::unique_ptr<AdaptiveController> adaptive_;
  /// Workers the *current batch* dispatches to: 0 (inline) or
  /// num_workers(). Reader-thread only; fixed for a whole batch, changed
  /// only at batch boundaries (after a drain when collapsing to serial).
  size_t cur_workers_ = 0;

  std::atomic<bool> stop_{false};
  /// Set on the first worker failure: workers drain-and-discard from then
  /// on so the reader can never block against a dead pipeline.
  std::atomic<bool> failed_{false};

  std::mutex err_mu_;
  Status first_error_;            ///< guarded by err_mu_
  std::exception_ptr exception_;  ///< guarded by err_mu_

  /// Deferred (lsn, txn) lock releases, reader-thread only; LSN-ascending.
  std::deque<std::pair<Lsn, TxnId>> pending_releases_;

  std::atomic<size_t> ops_applied_{0};
  /// Ops applied inline on the reader thread (all of them when serial,
  /// barrier ops when parallel). Atomic for the same reason as the worker
  /// counters: worker_stats() may sample from another thread mid-run.
  std::atomic<size_t> inline_ops_applied_{0};
};

}  // namespace morph::transform
