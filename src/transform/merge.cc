#include "transform/merge.h"

#include "common/clock.h"
#include "transform/populate.h"

namespace morph::transform {

namespace {

/// Structural schema equality (names, types, nullability, key positions).
bool SchemasMatch(const Schema& a, const Schema& b) {
  if (a.num_columns() != b.num_columns()) return false;
  if (a.key_indices() != b.key_indices()) return false;
  for (size_t i = 0; i < a.num_columns(); ++i) {
    if (a.column(i).name != b.column(i).name ||
        a.column(i).type != b.column(i).type ||
        a.column(i).nullable != b.column(i).nullable) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<MergeRules>> MergeRules::Make(engine::Database* db,
                                                     MergeSpec spec) {
  auto r = db->catalog()->GetByName(spec.r_table);
  if (r == nullptr) return Status::NotFound("no table named " + spec.r_table);
  auto s = db->catalog()->GetByName(spec.s_table);
  if (s == nullptr) return Status::NotFound("no table named " + spec.s_table);
  if (!SchemasMatch(r->schema(), s->schema())) {
    return Status::InvalidArgument(
        "merge requires identical schemas: " + r->schema().ToString() +
        " vs " + s->schema().ToString());
  }
  return std::unique_ptr<MergeRules>(
      new MergeRules(db, std::move(spec), std::move(r), std::move(s)));
}

Status MergeRules::Prepare() {
  MORPH_ASSIGN_OR_RETURN(t_,
                         db_->CreateTable(spec_.target_table, r_->schema()));
  return Status::OK();
}

Status MergeRules::InitialPopulate() {
  // Fuzzy-copy both sources through the LSN-gated batch upsert; on a
  // (transient) duplicate key, the copy with the higher LSN wins — the same
  // newest-contributor seeding the split uses, making the LSN gates of the
  // propagation rules sound. The gate is evaluated inside the table under
  // its shard mutex, so it resolves duplicates across *workers'* batches in
  // any arrival order just as it did across the two serial scans.
  return RunPopulatePhase(
      throttle_controller(), populate_config(),
      [&](PopulateWorker& w) -> Status {
        BatchSink sink(t_.get(), BatchSink::Mode::kLsnUpsert, &w);
        const PopulateConfig& config = populate_config();
        for (const auto& src : {r_, s_}) {
          const size_t hi = config.ClampedShardEnd(src->num_shards());
          for (size_t sh = config.shard_begin + w.index(); sh < hi;
               sh += w.partitions()) {
            for (storage::Record& rec : src->SnapshotShard(sh)) {
              storage::Record copy;
              copy.row = std::move(rec.row);
              copy.lsn = rec.lsn;
              MORPH_RETURN_NOT_OK(sink.Add(std::move(copy)));
            }
          }
        }
        return sink.Flush();
      });
}

Status MergeRules::Apply(const Op& op, std::vector<txn::RecordId>* affected) {
  if (!IsSource(op.table_id)) {
    return Status::Internal("op on a table that is not a merge source");
  }
  if (affected != nullptr) affected->push_back({t_->id(), op.key});
  switch (op.type) {
    case OpType::kInsert: {
      storage::Record rec;
      rec.row = op.after;
      rec.lsn = op.lsn;
      Status st = t_->Insert(std::move(rec));
      if (st.IsAlreadyExists()) {
        // Either already reflected, or a newer image is present (Theorem-1
        // via the LSN): only an older copy is overwritten.
        st = t_->Mutate(op.key, [&](storage::Record* cur) {
          if (cur->lsn >= op.lsn) return false;
          cur->row = op.after;
          cur->lsn = op.lsn;
          return true;
        });
        counters_.ops_ignored++;
        return st;
      }
      counters_.ops_applied++;
      return st;
    }
    case OpType::kDelete: {
      auto cur = t_->Get(op.key);
      if (!cur.ok() || cur->lsn >= op.lsn) {
        counters_.ops_ignored++;
        return Status::OK();
      }
      counters_.ops_applied++;
      const Status st = t_->Delete(op.key);
      if (st.IsNotFound()) return Status::OK();
      return st;
    }
    case OpType::kUpdate: {
      bool applied = false;
      const Status st = t_->Mutate(op.key, [&](storage::Record* cur) {
        if (cur->lsn >= op.lsn) return false;
        for (size_t i = 0; i < op.updated_columns.size(); ++i) {
          cur->row[op.updated_columns[i]] = op.after_values[i];
        }
        cur->lsn = op.lsn;
        applied = true;
        return true;
      });
      if (applied) {
        counters_.ops_applied++;
      } else {
        counters_.ops_ignored++;
      }
      if (st.IsNotFound()) return Status::OK();
      return st;
    }
  }
  return Status::Internal("unreachable");
}

std::vector<txn::RecordId> MergeRules::AffectedTargets(TableId table,
                                                       const Row& pk) {
  if (!IsSource(table)) return {};
  return {txn::RecordId{t_->id(), pk}};
}

Status MergeRules::DropTargets() {
  const Status st = db_->DropTable(spec_.target_table);
  if (st.IsNotFound()) return Status::OK();
  return st;
}

}  // namespace morph::transform
