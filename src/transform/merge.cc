#include "transform/merge.h"

#include "common/clock.h"

namespace morph::transform {

namespace {

/// Structural schema equality (names, types, nullability, key positions).
bool SchemasMatch(const Schema& a, const Schema& b) {
  if (a.num_columns() != b.num_columns()) return false;
  if (a.key_indices() != b.key_indices()) return false;
  for (size_t i = 0; i < a.num_columns(); ++i) {
    if (a.column(i).name != b.column(i).name ||
        a.column(i).type != b.column(i).type ||
        a.column(i).nullable != b.column(i).nullable) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<MergeRules>> MergeRules::Make(engine::Database* db,
                                                     MergeSpec spec) {
  auto r = db->catalog()->GetByName(spec.r_table);
  if (r == nullptr) return Status::NotFound("no table named " + spec.r_table);
  auto s = db->catalog()->GetByName(spec.s_table);
  if (s == nullptr) return Status::NotFound("no table named " + spec.s_table);
  if (!SchemasMatch(r->schema(), s->schema())) {
    return Status::InvalidArgument(
        "merge requires identical schemas: " + r->schema().ToString() +
        " vs " + s->schema().ToString());
  }
  return std::unique_ptr<MergeRules>(
      new MergeRules(db, std::move(spec), std::move(r), std::move(s)));
}

Status MergeRules::Prepare() {
  MORPH_ASSIGN_OR_RETURN(t_,
                         db_->CreateTable(spec_.target_table, r_->schema()));
  return Status::OK();
}

Status MergeRules::InitialPopulate() {
  // Fuzzy-copy both sources; on a (transient) duplicate key, the copy with
  // the higher LSN wins — the same newest-contributor seeding the split
  // uses, making the LSN gates of the propagation rules sound.
  constexpr size_t kThrottleBatch = 256;
  for (const auto& src : {r_, s_}) {
    size_t scanned = 0;
    auto batch_start = Clock::Now();
    Status status;
    src->FuzzyScan([&](const storage::Record& rec) {
      if (!status.ok()) return;
      if (++scanned % kThrottleBatch == 0) {
        Throttle(Clock::NanosSince(batch_start));
        batch_start = Clock::Now();
      }
      storage::Record copy;
      copy.row = rec.row;
      copy.lsn = rec.lsn;
      Status st = t_->Insert(std::move(copy));
      if (st.IsAlreadyExists()) {
        st = t_->Mutate(t_->schema().KeyOf(rec.row), [&](storage::Record* cur) {
          if (cur->lsn >= rec.lsn) return false;
          cur->row = rec.row;
          cur->lsn = rec.lsn;
          return true;
        });
      }
      if (!st.ok()) status = st;
    });
    MORPH_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

Status MergeRules::Apply(const Op& op, std::vector<txn::RecordId>* affected) {
  if (!IsSource(op.table_id)) {
    return Status::Internal("op on a table that is not a merge source");
  }
  if (affected != nullptr) affected->push_back({t_->id(), op.key});
  switch (op.type) {
    case OpType::kInsert: {
      storage::Record rec;
      rec.row = op.after;
      rec.lsn = op.lsn;
      Status st = t_->Insert(std::move(rec));
      if (st.IsAlreadyExists()) {
        // Either already reflected, or a newer image is present (Theorem-1
        // via the LSN): only an older copy is overwritten.
        st = t_->Mutate(op.key, [&](storage::Record* cur) {
          if (cur->lsn >= op.lsn) return false;
          cur->row = op.after;
          cur->lsn = op.lsn;
          return true;
        });
        counters_.ops_ignored++;
        return st;
      }
      counters_.ops_applied++;
      return st;
    }
    case OpType::kDelete: {
      auto cur = t_->Get(op.key);
      if (!cur.ok() || cur->lsn >= op.lsn) {
        counters_.ops_ignored++;
        return Status::OK();
      }
      counters_.ops_applied++;
      const Status st = t_->Delete(op.key);
      if (st.IsNotFound()) return Status::OK();
      return st;
    }
    case OpType::kUpdate: {
      bool applied = false;
      const Status st = t_->Mutate(op.key, [&](storage::Record* cur) {
        if (cur->lsn >= op.lsn) return false;
        for (size_t i = 0; i < op.updated_columns.size(); ++i) {
          cur->row[op.updated_columns[i]] = op.after_values[i];
        }
        cur->lsn = op.lsn;
        applied = true;
        return true;
      });
      if (applied) {
        counters_.ops_applied++;
      } else {
        counters_.ops_ignored++;
      }
      if (st.IsNotFound()) return Status::OK();
      return st;
    }
  }
  return Status::Internal("unreachable");
}

std::vector<txn::RecordId> MergeRules::AffectedTargets(TableId table,
                                                       const Row& pk) {
  if (!IsSource(table)) return {};
  return {txn::RecordId{t_->id(), pk}};
}

Status MergeRules::DropTargets() {
  const Status st = db_->DropTable(spec_.target_table);
  if (st.IsNotFound()) return Status::OK();
  return st;
}

}  // namespace morph::transform
