#include "transform/hsplit.h"

#include "common/clock.h"
#include "transform/populate.h"

namespace morph::transform {

Result<std::unique_ptr<HorizontalSplitRules>> HorizontalSplitRules::Make(
    engine::Database* db, HorizontalSplitSpec spec) {
  auto t = db->catalog()->GetByName(spec.t_table);
  if (t == nullptr) return Status::NotFound("no table named " + spec.t_table);
  auto col = t->schema().IndexOf(spec.predicate.column);
  if (!col) {
    return Status::InvalidArgument("no column " + spec.predicate.column +
                                   " in " + spec.t_table);
  }
  return std::unique_ptr<HorizontalSplitRules>(
      new HorizontalSplitRules(db, std::move(spec), std::move(t), *col));
}

Status HorizontalSplitRules::Prepare() {
  MORPH_ASSIGN_OR_RETURN(r_, db_->CreateTable(spec_.r_name, t_src_->schema()));
  MORPH_ASSIGN_OR_RETURN(s_, db_->CreateTable(spec_.s_name, t_src_->schema()));
  return Status::OK();
}

Status HorizontalSplitRules::InitialPopulate() {
  // Shard-partitioned fuzzy scan of T; each worker routes its verbatim
  // copies (source LSN = state identifier) into one batch sink per side.
  // Each T key lives in exactly one shard, so exactly one worker emits it —
  // the targets are identical for any worker count.
  return RunPopulatePhase(
      throttle_controller(), populate_config(),
      [&](PopulateWorker& w) -> Status {
        BatchSink r_sink(r_.get(), BatchSink::Mode::kInsert, &w);
        BatchSink s_sink(s_.get(), BatchSink::Mode::kInsert, &w);
        const PopulateConfig& config = populate_config();
        const size_t hi = config.ClampedShardEnd(t_src_->num_shards());
        for (size_t sh = config.shard_begin + w.index(); sh < hi;
             sh += w.partitions()) {
          for (storage::Record& rec : t_src_->SnapshotShard(sh)) {
            storage::Record copy;
            copy.row = std::move(rec.row);
            copy.lsn = rec.lsn;
            BatchSink& sink =
                Route(copy.row) == r_.get() ? r_sink : s_sink;
            MORPH_RETURN_NOT_OK(sink.Add(std::move(copy)));
          }
        }
        MORPH_RETURN_NOT_OK(r_sink.Flush());
        return s_sink.Flush();
      });
}

Status HorizontalSplitRules::Apply(const Op& op,
                                   std::vector<txn::RecordId>* affected) {
  if (op.table_id != t_src_->id()) {
    return Status::Internal("op on a table that is not the split source");
  }

  // Current copy of the key, if any: check both sides (fuzzy anomalies can
  // transiently duplicate a key across them; the newer copy is the truth).
  storage::Table* holder = nullptr;
  storage::Record current;
  for (storage::Table* side : {r_.get(), s_.get()}) {
    auto rec = side->Get(op.key);
    if (rec.ok() && (holder == nullptr || rec->lsn > current.lsn)) {
      holder = side;
      current = *rec;
    }
  }
  auto note = [&](storage::Table* side) {
    if (affected != nullptr) affected->push_back({side->id(), op.key});
  };

  /// Removes stale copies (LSN below the op) from `except`'s sibling — and
  /// from `except` itself when `also_holder` is set.
  auto clean = [&](storage::Table* keep) -> Status {
    for (storage::Table* side : {r_.get(), s_.get()}) {
      if (side == keep) continue;
      auto rec = side->Get(op.key);
      if (rec.ok() && rec->lsn < op.lsn) {
        note(side);
        const Status st = side->Delete(op.key);
        if (!st.ok() && !st.IsNotFound()) return st;
      }
    }
    return Status::OK();
  };

  switch (op.type) {
    case OpType::kInsert: {
      storage::Table* dest = Route(op.after);
      note(dest);
      if (holder != nullptr && current.lsn >= op.lsn) {
        counters_.ops_ignored++;
        return Status::OK();
      }
      MORPH_RETURN_NOT_OK(clean(dest));
      storage::Record rec;
      rec.row = op.after;
      rec.lsn = op.lsn;
      Status st = dest->Insert(std::move(rec));
      if (st.IsAlreadyExists()) {
        st = dest->Mutate(op.key, [&](storage::Record* cur) {
          if (cur->lsn >= op.lsn) return false;
          cur->row = op.after;
          cur->lsn = op.lsn;
          return true;
        });
      }
      counters_.ops_applied++;
      return st;
    }
    case OpType::kDelete: {
      if (holder == nullptr || current.lsn >= op.lsn) {
        counters_.ops_ignored++;
        return Status::OK();
      }
      counters_.ops_applied++;
      return clean(nullptr);
    }
    case OpType::kUpdate: {
      if (holder == nullptr || current.lsn >= op.lsn) {
        counters_.ops_ignored++;
        return Status::OK();
      }
      counters_.ops_applied++;
      Row new_row = current.row;
      for (size_t i = 0; i < op.updated_columns.size(); ++i) {
        new_row[op.updated_columns[i]] = op.after_values[i];
      }
      storage::Table* dest = Route(new_row);
      if (dest == holder) {
        note(dest);
        MORPH_RETURN_NOT_OK(clean(dest));
        return dest->Mutate(op.key, [&](storage::Record* cur) {
          if (cur->lsn >= op.lsn) return false;
          cur->row = std::move(new_row);
          cur->lsn = op.lsn;
          return true;
        });
      }
      // The update flips the predicate: migrate across targets.
      counters_.migrations++;
      note(holder);
      note(dest);
      MORPH_RETURN_NOT_OK(clean(dest));
      storage::Record rec;
      rec.row = new_row;
      rec.lsn = op.lsn;
      Status st = dest->Insert(std::move(rec));
      if (st.IsAlreadyExists()) {
        st = dest->Mutate(op.key, [&](storage::Record* cur) {
          if (cur->lsn >= op.lsn) return false;
          cur->row = new_row;
          cur->lsn = op.lsn;
          return true;
        });
      }
      return st;
    }
  }
  return Status::Internal("unreachable");
}

std::vector<txn::RecordId> HorizontalSplitRules::AffectedTargets(
    TableId table, const Row& pk) {
  if (table != t_src_->id()) return {};
  // The record may live on (or move to) either side; mirror the lock onto
  // both so post-switch transactions cannot slip between them.
  return {txn::RecordId{r_->id(), pk}, txn::RecordId{s_->id(), pk}};
}

Status HorizontalSplitRules::DropTargets() {
  Status st = db_->DropTable(spec_.r_name);
  if (!st.ok() && !st.IsNotFound()) return st;
  st = db_->DropTable(spec_.s_name);
  if (!st.ok() && !st.IsNotFound()) return st;
  return Status::OK();
}

}  // namespace morph::transform
