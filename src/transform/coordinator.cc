#include "transform/coordinator.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace morph::transform {

std::string_view SyncStrategyToString(SyncStrategy s) {
  switch (s) {
    case SyncStrategy::kBlockingCommit:
      return "blocking-commit";
    case SyncStrategy::kNonBlockingAbort:
      return "non-blocking-abort";
    case SyncStrategy::kNonBlockingCommit:
      return "non-blocking-commit";
  }
  return "unknown";
}

TransformCoordinator::TransformCoordinator(engine::Database* db,
                                           std::shared_ptr<OperatorRules> rules,
                                           TransformConfig config)
    : db_(db),
      rules_(std::move(rules)),
      config_(config),
      priority_(config.priority),
      tlocks_(config.target_lock_wait_micros) {
  PropagatorConfig pc;
  if (config_.propagate_workers == TransformConfig::kAutoWorkers) {
    // Adaptive (`auto`): the parallel mode's width comes from the host —
    // leave one core for the reader, keep the fan-out modest — and the
    // controller decides batch-by-batch whether running it beats serial.
    const size_t hw = std::thread::hardware_concurrency();
    pc.workers = std::clamp<size_t>(hw > 1 ? hw - 1 : 2, 2, 8);
    pc.adaptive = true;
    pc.handoff = PropagatorHandoff::kRing;
  } else {
    pc.workers = config_.propagate_workers;
    pc.handoff = config_.propagate_handoff;
  }
  pc.batch_size = config_.batch_size;
  pc.queue_capacity = config_.propagate_queue_capacity
                          ? config_.propagate_queue_capacity
                          : 2 * config_.batch_size;
  pc.maintain_locks = config_.maintain_locks;
  propagator_ = std::make_unique<LogPropagator>(db_->wal(), rules_.get(),
                                                &tlocks_, &priority_, pc);

  // Staggered-tablet resolution. Everything it depends on is known here
  // (sources exist before Prepare; targets are created with the same
  // DatabaseOptions geometry), and creating the manager in the constructor
  // means the hook/housekeeping threads never race its publication.
  // Clamps to the whole-table path (stagger_ == nullptr) whenever a
  // precondition fails — see TransformConfig::tablets for the list.
  if (config_.tablets > 1 && rules_->SupportsStaggeredTablets() &&
      config_.strategy == SyncStrategy::kNonBlockingAbort &&
      !config_.continuous && !config_.run_consistency_checker) {
    size_t shards = 0;
    size_t table_tablets = 0;
    bool eligible = true;
    for (const auto& src : rules_->Sources()) {
      if (rules_->KeepSource(src->id())) {
        eligible = false;
        break;
      }
      if (shards == 0) {
        shards = src->num_shards();
        table_tablets = src->num_tablets();
      } else if (src->num_shards() != shards ||
                 src->num_tablets() != table_tablets) {
        eligible = false;
        break;
      }
    }
    if (eligible && table_tablets > 1) {
      auto mgr = std::make_unique<TabletTransformManager>(
          shards, table_tablets, config_.tablets);
      if (mgr->num_tablets() > 1) stagger_ = std::move(mgr);
    }
  }
}

TransformCoordinator::~TransformCoordinator() {
  if (hook_registered_.load(std::memory_order_acquire)) {
    db_->ClearTransformHook();
  }
}

bool TransformCoordinator::IsSourceTable(TableId id) const {
  return source_set_.contains(id);
}

bool TransformCoordinator::IsTargetTable(TableId id) const {
  return target_set_.contains(id);
}

txn::LockOrigin TransformCoordinator::OriginOf(TableId source_table) const {
  if (!source_ids_.empty() && source_table == source_ids_[0]) {
    return txn::LockOrigin::kSource0;
  }
  return txn::LockOrigin::kSource1;
}

// --- propagation -------------------------------------------------------------

Result<size_t> TransformCoordinator::PropagateRange(Lsn from, Lsn to,
                                                    bool throttled) {
  // Record handling lives in LogPropagator (transform/propagator.h); the
  // serial (propagate_workers == 0) configuration runs the identical
  // pipeline with one inline worker on this thread.
  std::function<bool()> cancel;
  if (throttled) {
    cancel = [this] {
      // The Run loop will handle the abort; a post-switch drain must keep
      // going regardless.
      return abort_requested_.load(std::memory_order_acquire) &&
             !switched_.load(std::memory_order_acquire);
    };
  }
  return propagator_->PropagateRange(from, to, throttled, &next_lsn_, cancel);
}

void TransformCoordinator::FillPropagationStats(TransformStats* stats) const {
  // Pure snapshot of the pipeline's atomic instruments — safe on every
  // Run() exit path including abort: worker counters are relaxed atomics
  // (see LogPropagator::worker_stats) and PropagateRange drains the
  // workers before returning on all paths, so nothing here depends on
  // join-before-snapshot ordering.
  stats->ops_propagated = propagator_->ops_applied();
  stats->propagate_workers = propagator_->num_workers();
  stats->propagate_handoff =
      propagator_->num_workers() == 0
          ? "serial"
          : (propagator_->handoff_kind() == PropagatorHandoff::kRing ? "ring"
                                                                     : "mutex");
  if (const AdaptiveController* ac = propagator_->adaptive()) {
    stats->adaptive_probe_windows = ac->probe_windows();
    stats->adaptive_collapses = ac->collapses();
    stats->adaptive_expansions = ac->expansions();
  }
  stats->worker_ops.clear();
  for (const PropagatorWorkerStats& ws : propagator_->worker_stats()) {
    stats->worker_ops.push_back(ws.ops_applied);
  }
  if (stats->propagate_micros > 0) {
    stats->propagate_records_per_sec =
        static_cast<double>(stats->log_records_processed) /
        (static_cast<double>(stats->propagate_micros) * 1e-6);
  }
  stats->achieved_duty = priority_.totals().achieved();
}

// --- the four steps ------------------------------------------------------------

Result<TransformStats> TransformCoordinator::Run() {
  TransformStats stats;
  const auto run_start = Clock::Now();
  MORPH_COUNTER_INC("transform.runs_started");

  // Pin the WAL before anything else: log-archiving housekeeping (a
  // checkpointer's TruncateBefore, a bench janitor) runs concurrently and
  // knows nothing about this transformation. Until the fuzzy mark fixes the
  // propagation start the pin conservatively holds the whole retained log;
  // it then tracks start_lsn and finally the live propagation watermark.
  // Without the pin, a checkpoint whose truncate_floor lies past
  // un-propagated records would discard them before the propagator reads
  // them — the propagator's checked scans would fail the transformation
  // loudly, but the pin is what prevents the loss in the first place. In
  // durable mode the same pin gates segment recycling: TruncateBefore
  // clamps at this floor before persisting a new chain base, so no segment
  // holding un-propagated records is ever recycled.
  retention_floor_.store(db_->wal()->FirstLsn(), std::memory_order_release);
  const uint64_t pin_id = db_->wal()->AddRetentionPin([this]() -> Lsn {
    const Lsn watermark = propagated_lsn();
    if (watermark != kInvalidLsn) return watermark;
    return retention_floor_.load(std::memory_order_acquire);
  });
  struct PinGuard {
    wal::Wal* wal;
    uint64_t id;
    ~PinGuard() { wal->RemoveRetentionPin(id); }
  } pin_guard{db_->wal(), pin_id};

  // Step 1: preparation (§3.1).
  MORPH_FAILPOINT("transform.prepare.before");
  phase_.store(Phase::kPreparing, std::memory_order_release);
  {
    const auto t0 = Clock::Now();
    const Status st = rules_->Prepare();
    stats.prepare_micros = Clock::MicrosSince(t0);
    if (!st.ok()) {
      AbortTransformation("prepare failed: " + st.ToString(), &stats);
      return stats;
    }
  }
  for (const auto& t : rules_->Sources()) source_ids_.push_back(t->id());
  for (const auto& t : rules_->Targets()) target_ids_.push_back(t->id());
  source_set_ = TableIdSet(source_ids_);
  target_set_ = TableIdSet(target_ids_);
  propagator_->SetSources(source_ids_);
  // Targets exist in the catalog from here on; a crash leaves them half-built
  // but unlogged, so restart recovery makes them vanish with the incarnation.
  MORPH_FAILPOINT("transform.prepare.after");

  if (config_.strategy == SyncStrategy::kNonBlockingCommit) {
    for (TableId id : source_ids_) {
      if (rules_->KeepSource(id)) {
        AbortTransformation(
            "non-blocking commit is not supported with source-reusing "
            "transformations (old and new transactions would need "
            "distinguishable lock origins on the same table)",
            &stats);
        return stats;
      }
    }
  }

  {
    const Status st = db_->SetTransformHook(this);
    if (!st.ok()) {
      AbortTransformation("hook registration failed: " + st.ToString(), &stats);
      return stats;
    }
    hook_registered_.store(true, std::memory_order_release);
  }

  // Staggered path: steps 2–4 run as a sequence of per-tablet
  // sub-transforms. The pin guard above stays in scope for the whole run.
  if (stagger_ != nullptr) {
    return RunStaggered(run_start, std::move(stats));
  }

  // Step 2: initial population (§3.2). The fuzzy mark carries the active-
  // transaction table; propagation starts at the oldest log record any of
  // those transactions wrote. `guard` is read before the snapshot so a
  // transaction beginning concurrently (and thus missing from the snapshot)
  // still has all its records at LSN > guard covered.
  const Lsn guard = db_->wal()->LastLsn();
  const txn::ActiveSnapshot snap = db_->txns()->Snapshot();
  {
    wal::LogRecord mark;
    mark.type = wal::LogRecordType::kFuzzyMark;
    mark.active_txns = snap.txns;
    mark.min_active_lsn = snap.min_first_lsn;
    const Lsn mark_lsn = db_->wal()->Append(std::move(mark));
    // a = mark LSN, b = active transactions captured in it.
    MORPH_TRACE("transform.fuzzy.begin_mark", static_cast<int64_t>(mark_lsn),
                static_cast<int64_t>(snap.txns.size()));
  }
  Lsn start_lsn = guard + 1;
  if (snap.min_first_lsn != kInvalidLsn && snap.min_first_lsn < start_lsn) {
    start_lsn = snap.min_first_lsn;
  }
  // The propagation start is fixed now; the retention pin no longer needs
  // to hold anything older.
  retention_floor_.store(start_lsn, std::memory_order_release);

  MORPH_FAILPOINT("transform.fuzzy.begin");
  phase_.store(Phase::kPopulating, std::memory_order_release);
  rules_->set_throttle(&priority_);
  {
    PopulateConfig populate_config;
    populate_config.workers = config_.populate_workers;
    rules_->set_populate_config(populate_config);
  }
  {
    const auto t0 = Clock::Now();
    const Status st = rules_->InitialPopulate();
    stats.populate_micros = Clock::MicrosSince(t0);
    if (!st.ok()) {
      AbortTransformation("initial population failed: " + st.ToString(), &stats);
      return stats;
    }
  }
  MORPH_FAILPOINT("transform.fuzzy.end");
  {
    // End-of-fuzzy-read mark, beginning the first propagation cycle (§3.3).
    wal::LogRecord mark;
    mark.type = wal::LogRecordType::kFuzzyMark;
    const txn::ActiveSnapshot snap2 = db_->txns()->Snapshot();
    mark.active_txns = snap2.txns;
    mark.min_active_lsn = snap2.min_first_lsn;
    const Lsn mark_lsn = db_->wal()->Append(std::move(mark));
    MORPH_TRACE("transform.fuzzy.end_mark", static_cast<int64_t>(mark_lsn),
                static_cast<int64_t>(stats.populate_micros));
  }

  // Step 3: log propagation iterations (§3.3).
  phase_.store(Phase::kPropagating, std::memory_order_release);
  next_lsn_ = start_lsn;
  size_t lag_count = 0;
  size_t last_backlog = std::numeric_limits<size_t>::max();
  {
    const auto t0 = Clock::Now();
    while (true) {
      MORPH_FAILPOINT("transform.propagate.iteration");
      if (abort_requested_.load(std::memory_order_acquire)) {
        stats.propagate_micros = Clock::MicrosSince(t0);
        AbortTransformation("abort requested", &stats);
        return stats;
      }
      // The duration/iteration backstops guard a transformation that should
      // be converging; a continuous (materialized-view) run is *meant* to
      // live indefinitely, so only RequestAbort/RequestFinish end it.
      if (!config_.continuous &&
          Clock::MicrosSince(run_start) > config_.max_duration_micros) {
        stats.propagate_micros = Clock::MicrosSince(t0);
        AbortTransformation("transformation exceeded max duration", &stats);
        return stats;
      }
      if (paused_.load(std::memory_order_acquire)) {
        // Suspended by the DBA: no work, no lag analysis, stay responsive
        // to abort requests.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        lag_count = 0;
        last_backlog = std::numeric_limits<size_t>::max();
        continue;
      }
      // Cap the slice so the end-of-iteration analysis below runs regularly
      // even when a fast writer keeps extending the log. At a low duty cycle
      // the same record count takes proportionally longer wall-time, so the
      // cap scales with the priority — otherwise a 0.1%-duty iteration could
      // run for many seconds and the lag detector would react far too late.
      size_t iteration_cap = config_.max_records_per_iteration
                                 ? config_.max_records_per_iteration
                                 : config_.batch_size * 16;
      iteration_cap = std::max(
          config_.batch_size,
          static_cast<size_t>(static_cast<double>(iteration_cap) *
                              priority_.priority()));
      Lsn end = db_->wal()->LastLsn();
      if (end >= next_lsn_ && end - next_lsn_ + 1 > iteration_cap) {
        end = next_lsn_ + iteration_cap - 1;
      }
      if (end >= next_lsn_) {
        auto n = PropagateRange(next_lsn_, end, /*throttled=*/true);
        if (!n.ok()) {
          stats.propagate_micros = Clock::MicrosSince(t0);
          AbortTransformation("propagation failed: " + n.status().ToString(),
                              &stats);
          return stats;
        }
        stats.log_records_processed += *n;
      }
      stats.iterations++;
      MORPH_COUNTER_INC("transform.propagate.iterations");

      if (config_.run_consistency_checker) {
        auto cc = rules_->RunConsistencyCheck(config_.cc_batch);
        if (!cc.ok()) {
          stats.propagate_micros = Clock::MicrosSince(t0);
          AbortTransformation("consistency check failed: " + cc.status().ToString(),
                              &stats);
          return stats;
        }
      }

      const Lsn tail = db_->wal()->LastLsn();
      const size_t backlog = tail >= next_lsn_ ? tail - next_lsn_ + 1 : 0;
      MORPH_GAUGE_SET("transform.backlog", static_cast<int64_t>(backlog));
      MORPH_GAUGE_SET(
          "transform.priority.requested_ppm",
          static_cast<int64_t>(priority_.priority() * 1e6));
      MORPH_GAUGE_SET(
          "transform.priority.achieved_ppm",
          static_cast<int64_t>(priority_.totals().achieved() * 1e6));
      const bool ready = rules_->ReadyForSync();
      if (config_.continuous) {
        // Materialized-view mode: maintain forever; only RequestFinish (or
        // abort/lag/timeout above) leaves the loop.
        if (finish_requested_.load(std::memory_order_acquire)) break;
      } else if (backlog <= config_.sync_threshold && ready &&
                 !sync_hold_.load(std::memory_order_acquire)) {
        break;
      }

      // §3.3: if more log is produced than the propagator processes,
      // synchronization never starts — abort or raise the priority.
      if (backlog > config_.sync_threshold && backlog >= last_backlog) {
        lag_count++;
      } else {
        lag_count = 0;
      }
      last_backlog = backlog;
      if (lag_count >= config_.lag_iterations) {
        if (config_.on_lag == OnLag::kBoostPriority &&
            priority_.priority() < 1.0) {
          priority_.set_priority(priority_.priority() * 2.0);
          lag_count = 0;
        } else {
          stats.propagate_micros = Clock::MicrosSince(t0);
          AbortTransformation("propagator cannot keep up with log generation",
                              &stats);
          return stats;
        }
      }
      if (!config_.continuous && stats.iterations >= config_.max_iterations) {
        stats.propagate_micros = Clock::MicrosSince(t0);
        AbortTransformation("max propagation iterations reached", &stats);
        return stats;
      }
      if (backlog == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
    stats.propagate_micros = Clock::MicrosSince(t0);
  }

  // Continuous (materialized-view) mode: one final latched catch-up pass
  // delivers an action-consistent view, then everything stays in place.
  if (config_.continuous) {
    phase_.store(Phase::kSynchronizing, std::memory_order_release);
    {
      std::vector<std::shared_ptr<storage::Table>> sources = rules_->Sources();
      std::sort(sources.begin(), sources.end(),
                [](const auto& a, const auto& b) { return a->id() < b->id(); });
      const auto latch_start = Clock::Now();
      std::vector<std::unique_lock<std::shared_mutex>> latches;
      for (const auto& src : sources) {
        for (size_t t = 0; t < src->num_tablets(); ++t) {
          latches.emplace_back(src->tablet_latch(t));
        }
      }
      // a = tables latched, b = 0 (acquire) / latched nanos (release).
      MORPH_TRACE("transform.sync.latch_acquire",
                  static_cast<int64_t>(sources.size()), 0);
      const Lsn end = db_->wal()->LastLsn();
      if (end >= next_lsn_) {
        auto n = PropagateRange(next_lsn_, end, /*throttled=*/false);
        if (!n.ok()) {
          AbortTransformation("final catch-up failed: " + n.status().ToString(),
                              &stats);
          return stats;
        }
        stats.log_records_processed += *n;
      }
      stats.sync_latch_nanos = Clock::NanosSince(latch_start);
      stats.sync_latch_micros = stats.sync_latch_nanos / 1000;
      MORPH_HISTOGRAM_NANOS("transform.sync.latch_nanos",
                            stats.sync_latch_nanos);
      MORPH_TRACE("transform.sync.latch_release",
                  static_cast<int64_t>(sources.size()),
                  stats.sync_latch_nanos);
    }
    db_->ClearTransformHook();
    hook_registered_.store(false, std::memory_order_release);
    tlocks_.Clear();
    phase_.store(Phase::kCompleted, std::memory_order_release);
    stats.completed = true;
    stats.final_priority = priority_.priority();
    FillPropagationStats(&stats);
    stats.total_micros = Clock::MicrosSince(run_start);
    MORPH_COUNTER_INC("transform.runs_completed");
    return stats;
  }

  // Step 4: synchronization (§3.4).
  phase_.store(Phase::kSynchronizing, std::memory_order_release);
  {
    const auto t0 = Clock::Now();
    const Status st = SynchronizeAndSwitch(&stats);
    stats.sync_micros = Clock::MicrosSince(t0);
    if (!st.ok()) {
      AbortTransformation("synchronization failed: " + st.ToString(), &stats);
      return stats;
    }
  }

  // Post-switch drain + finalize/drop/complete tail, shared with the
  // staggered path.
  return FinishAndComplete(run_start, std::move(stats));
}

Result<TransformStats> TransformCoordinator::FinishAndComplete(
    const Clock::TimePoint& run_start, TransformStats stats) {
  // Post-switch drain: finish propagating old transactions' records so
  // their mirrored locks get released, then drop the sources.
  {
    const auto t0 = Clock::Now();
    const Status st = Drain(&stats);
    stats.drain_micros = Clock::MicrosSince(t0);
    if (!st.ok()) {
      // Too late to roll back the switch: report the failure but leave the
      // (live) transformed tables in place.
      db_->ClearTransformHook();
      hook_registered_.store(false, std::memory_order_release);
      tlocks_.Clear();
      phase_.store(Phase::kAborted, std::memory_order_release);
      stats.abort_reason = "drain failed: " + st.ToString();
      FillPropagationStats(&stats);
      stats.total_micros = Clock::MicrosSince(run_start);
      MORPH_COUNTER_INC("transform.runs_aborted");
      return stats;
    }
  }

  MORPH_FAILPOINT("transform.finalize.before_drop");
  {
    const Status st = rules_->FinalizeTargets();
    if (!st.ok()) {
      stats.abort_reason = "warning: finalization failed: " + st.ToString();
    }
  }
  if (config_.drop_sources) {
    for (const auto& src : rules_->Sources()) {
      if (rules_->KeepSource(src->id())) continue;
      const Status st = db_->DropTable(src->name());
      if (!st.ok() && !st.IsNotFound()) {
        // Non-fatal: the transformation itself is complete.
        stats.abort_reason = "warning: dropping source failed: " + st.ToString();
      }
    }
  }

  db_->ClearTransformHook();
  hook_registered_.store(false, std::memory_order_release);
  tlocks_.Clear();
  phase_.store(Phase::kCompleted, std::memory_order_release);
  stats.completed = true;
  stats.final_priority = priority_.priority();
  FillPropagationStats(&stats);
  stats.total_micros = Clock::MicrosSince(run_start);
  MORPH_COUNTER_INC("transform.runs_completed");
  return stats;
}

// --- staggered tablets ---------------------------------------------------------

Result<size_t> TransformCoordinator::PropagateTabletPass(
    size_t k, Lsn from, Lsn to, bool process_completions, bool throttled) {
  propagator_->SetRecordFilter(stagger_->LocalFilter(k));
  propagator_->set_process_completions(process_completions);
  // Local cursor: a tablet pass re-reads a window the global stream owns
  // (or will own); it must not move the shared cursor.
  std::atomic<Lsn> cursor{from};
  auto n = propagator_->PropagateRange(from, to, throttled, &cursor,
                                       std::function<bool()>());
  propagator_->SetRecordFilter(stagger_->GlobalFilter());
  propagator_->set_process_completions(true);
  return n;
}

Result<TransformStats> TransformCoordinator::RunStaggered(
    const Clock::TimePoint& run_start, TransformStats stats) {
  const size_t T = stagger_->num_tablets();
  stats.tablets = T;
  stats.tablet_latch_nanos.assign(T, 0);
  propagator_->SetRecordFilter(stagger_->GlobalFilter());
  rules_->set_throttle(&priority_);

  // Failure after the first tablet has migrated is past the point of no
  // return — that tablet's keys already live on the transformed tables and
  // client transactions were switched to them — so it is handled like a
  // drain failure: report, leave the (live) targets in place.
  auto fail_late = [&](const std::string& reason) -> TransformStats {
    db_->ClearTransformHook();
    hook_registered_.store(false, std::memory_order_release);
    tlocks_.Clear();
    phase_.store(Phase::kAborted, std::memory_order_release);
    stats.completed = false;
    stats.abort_reason = reason;
    FillPropagationStats(&stats);
    stats.total_micros = Clock::MicrosSince(run_start);
    MORPH_COUNTER_INC("transform.runs_aborted");
    return stats;
  };

  // Phase A — staggered sub-population, one tablet at a time: begin-fuzzy
  // mark, shard-scoped populate, local catch-up to the global cursor,
  // activate, then a bounded global slice so later catch-up windows stay
  // small. The whole-table path is exactly this loop with T = 1 minus the
  // tablet bookkeeping.
  phase_.store(Phase::kPopulating, std::memory_order_release);
  for (size_t k = 0; k < T; ++k) {
    MORPH_FAILPOINT("transform.tablet.boundary");
    if (abort_requested_.load(std::memory_order_acquire)) {
      AbortTransformation("abort requested", &stats);
      return stats;
    }
    if (Clock::MicrosSince(run_start) > config_.max_duration_micros) {
      AbortTransformation("transformation exceeded max duration", &stats);
      return stats;
    }

    // Per-tablet begin-fuzzy mark: `guard` is read before the snapshot so a
    // transaction beginning concurrently still has all its records at
    // LSN > guard covered (same discipline as the whole-table mark).
    MORPH_FAILPOINT("transform.fuzzy.begin");
    const Lsn guard = db_->wal()->LastLsn();
    const txn::ActiveSnapshot snap = db_->txns()->Snapshot();
    {
      wal::LogRecord mark;
      mark.type = wal::LogRecordType::kFuzzyMark;
      mark.active_txns = snap.txns;
      mark.min_active_lsn = snap.min_first_lsn;
      const Lsn mark_lsn = db_->wal()->Append(std::move(mark));
      MORPH_TRACE("transform.fuzzy.begin_mark", static_cast<int64_t>(mark_lsn),
                  static_cast<int64_t>(snap.txns.size()));
    }
    Lsn start_k = guard + 1;
    if (snap.min_first_lsn != kInvalidLsn && snap.min_first_lsn < start_k) {
      start_k = snap.min_first_lsn;
    }
    if (k == 0) {
      // The run's WAL retention requirement: later tablets' floors can only
      // be higher (min-active and the log tail both advance), so the first
      // floor covers every local catch-up window (see propagated_lsn()).
      stagger_start_floor_.store(start_k, std::memory_order_release);
      retention_floor_.store(start_k, std::memory_order_release);
    }

    {
      PopulateConfig populate_config;
      populate_config.workers = config_.populate_workers;
      populate_config.shard_begin = stagger_->ShardBegin(k);
      populate_config.shard_end = stagger_->ShardEnd(k);
      populate_config.accumulate = true;
      rules_->set_populate_config(populate_config);
      const auto t0 = Clock::Now();
      const Status st = rules_->InitialPopulate();
      stats.populate_micros += Clock::MicrosSince(t0);
      if (!st.ok()) {
        AbortTransformation("initial population failed: " + st.ToString(),
                            &stats);
        return stats;
      }
    }
    {
      wal::LogRecord mark;
      mark.type = wal::LogRecordType::kFuzzyMark;
      const txn::ActiveSnapshot snap2 = db_->txns()->Snapshot();
      mark.active_txns = snap2.txns;
      mark.min_active_lsn = snap2.min_first_lsn;
      const Lsn mark_lsn = db_->wal()->Append(std::move(mark));
      MORPH_TRACE("transform.fuzzy.end_mark", static_cast<int64_t>(mark_lsn),
                  static_cast<int64_t>(stats.populate_micros));
    }
    MORPH_FAILPOINT("transform.fuzzy.end");

    if (k == 0) {
      // The global cursor starts at the first tablet's floor — there is
      // nothing behind it to catch up on.
      next_lsn_ = start_k;
    } else {
      // Local catch-up: the global stream already passed over [start_k, G)
      // with this tablet pending (its records were skipped); re-read the
      // window applying only tablet k. Completion records are processed —
      // releasing a transaction the global stream already released is a
      // no-op, and one whose ops this pass just mirrored must be released
      // if its completion falls inside the window.
      const Lsn g = next_lsn_.load(std::memory_order_acquire);
      if (g > start_k) {
        auto n = PropagateTabletPass(k, start_k, g - 1,
                                     /*process_completions=*/true,
                                     /*throttled=*/true);
        if (!n.ok()) {
          AbortTransformation(
              "tablet catch-up failed: " + n.status().ToString(), &stats);
          return stats;
        }
        stats.log_records_processed += *n;
      }
    }
    stagger_->Activate(k, start_k);

    // Bounded global slice between tablets: keep the shared cursor near the
    // log tail so the next tablet's catch-up window stays small.
    {
      const size_t cap = config_.batch_size * 16;
      const Lsn from = next_lsn_.load(std::memory_order_acquire);
      Lsn end = db_->wal()->LastLsn();
      if (end >= from && end - from + 1 > cap) end = from + cap - 1;
      if (end >= from) {
        auto n = PropagateRange(from, end, /*throttled=*/true);
        if (!n.ok()) {
          AbortTransformation("propagation failed: " + n.status().ToString(),
                              &stats);
          return stats;
        }
        stats.log_records_processed += *n;
      }
    }
  }

  // Phase B — global convergence: the whole-table step-3 loop minus the
  // features the constructor already clamped away (continuous mode, the
  // consistency checker).
  phase_.store(Phase::kPropagating, std::memory_order_release);
  {
    const auto t0 = Clock::Now();
    size_t lag_count = 0;
    size_t last_backlog = std::numeric_limits<size_t>::max();
    while (true) {
      MORPH_FAILPOINT("transform.propagate.iteration");
      if (abort_requested_.load(std::memory_order_acquire)) {
        stats.propagate_micros = Clock::MicrosSince(t0);
        AbortTransformation("abort requested", &stats);
        return stats;
      }
      if (Clock::MicrosSince(run_start) > config_.max_duration_micros) {
        stats.propagate_micros = Clock::MicrosSince(t0);
        AbortTransformation("transformation exceeded max duration", &stats);
        return stats;
      }
      if (paused_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        lag_count = 0;
        last_backlog = std::numeric_limits<size_t>::max();
        continue;
      }
      size_t iteration_cap = config_.max_records_per_iteration
                                 ? config_.max_records_per_iteration
                                 : config_.batch_size * 16;
      iteration_cap = std::max(
          config_.batch_size,
          static_cast<size_t>(static_cast<double>(iteration_cap) *
                              priority_.priority()));
      Lsn end = db_->wal()->LastLsn();
      if (end >= next_lsn_ && end - next_lsn_ + 1 > iteration_cap) {
        end = next_lsn_ + iteration_cap - 1;
      }
      if (end >= next_lsn_) {
        auto n = PropagateRange(next_lsn_, end, /*throttled=*/true);
        if (!n.ok()) {
          stats.propagate_micros = Clock::MicrosSince(t0);
          AbortTransformation("propagation failed: " + n.status().ToString(),
                              &stats);
          return stats;
        }
        stats.log_records_processed += *n;
      }
      stats.iterations++;
      MORPH_COUNTER_INC("transform.propagate.iterations");

      const Lsn tail = db_->wal()->LastLsn();
      const size_t backlog = tail >= next_lsn_ ? tail - next_lsn_ + 1 : 0;
      MORPH_GAUGE_SET("transform.backlog", static_cast<int64_t>(backlog));
      MORPH_GAUGE_SET("transform.priority.requested_ppm",
                      static_cast<int64_t>(priority_.priority() * 1e6));
      MORPH_GAUGE_SET(
          "transform.priority.achieved_ppm",
          static_cast<int64_t>(priority_.totals().achieved() * 1e6));
      if (backlog <= config_.sync_threshold && rules_->ReadyForSync() &&
          !sync_hold_.load(std::memory_order_acquire)) {
        break;
      }
      if (backlog > config_.sync_threshold && backlog >= last_backlog) {
        lag_count++;
      } else {
        lag_count = 0;
      }
      last_backlog = backlog;
      if (lag_count >= config_.lag_iterations) {
        if (config_.on_lag == OnLag::kBoostPriority &&
            priority_.priority() < 1.0) {
          priority_.set_priority(priority_.priority() * 2.0);
          lag_count = 0;
        } else {
          stats.propagate_micros = Clock::MicrosSince(t0);
          AbortTransformation("propagator cannot keep up with log generation",
                              &stats);
          return stats;
        }
      }
      if (stats.iterations >= config_.max_iterations) {
        stats.propagate_micros = Clock::MicrosSince(t0);
        AbortTransformation("max propagation iterations reached", &stats);
        return stats;
      }
      if (backlog == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
    stats.propagate_micros += Clock::MicrosSince(t0);
  }

  // Phase C — per-tablet synchronization: converge, latch only tablet k of
  // every source (id order, then latch-index order), one short local pass
  // to the log end, advance the epoch, migrate. Writers on the other T-1
  // tablets never see a latch; the per-key pause is one tablet's window
  // instead of the whole catch-up.
  phase_.store(Phase::kSynchronizing, std::memory_order_release);
  const auto sync_t0 = Clock::Now();
  MORPH_FAILPOINT("transform.sync.before_latch");
  std::vector<std::shared_ptr<storage::Table>> sources = rules_->Sources();
  std::sort(sources.begin(), sources.end(),
            [](const auto& a, const auto& b) { return a->id() < b->id(); });
  // Converge to the log tail before the first latch — all the way, not
  // merely to the sync threshold. Every record applied here (completions
  // on, no latch held) is one no latched pass will have to scan, so each
  // tablet's user-visible pause is O(records landed since the previous
  // tablet), not O(standing backlog). This is the structural win over the
  // whole-table path, which has no choice but to take its one latch with
  // the backlog still standing. Pass count bounded so a firehose writer
  // cannot livelock the switch: past the bound, the latches absorb
  // whatever tail remains — correct, just longer pauses.
  auto converge_unlatched = [&](size_t max_passes, size_t floor) -> Status {
    for (size_t pass = 0; pass < max_passes; ++pass) {
      const Lsn from = next_lsn_.load(std::memory_order_acquire);
      const Lsn tail = db_->wal()->LastLsn();
      if (tail < from || tail - from + 1 <= floor) break;
      auto n = PropagateRange(from, tail, /*throttled=*/false);
      if (!n.ok()) {
        return Status::Internal("pre-sync convergence failed: " +
                                n.status().ToString());
      }
      stats.log_records_processed += *n;
      if (Clock::MicrosSince(run_start) > config_.max_duration_micros) {
        return Status::Internal("transformation exceeded max duration");
      }
    }
    return Status::OK();
  };
  if (Status st = converge_unlatched(64, config_.batch_size); !st.ok()) {
    AbortTransformation(std::string(st.message()), &stats);
    return stats;
  }
  for (size_t k = 0; k < T; ++k) {
    MORPH_FAILPOINT("transform.tablet.boundary");
    if (abort_requested_.load(std::memory_order_acquire) &&
        !stagger_->AnyMigrated()) {
      AbortTransformation("abort requested", &stats);
      return stats;
    }
    // Light re-converge: the cursor is already near the tail, only the
    // records landed since the previous tablet's latch are behind it. The
    // tighter floor shrinks the window the latched pass has to replay —
    // and with it the chance of that pass conflicting with a live writer
    // while holding the latch.
    if (Status st = converge_unlatched(8, config_.batch_size / 8); !st.ok()) {
      if (stagger_->AnyMigrated()) return fail_late(std::string(st.message()));
      AbortTransformation(std::string(st.message()), &stats);
      return stats;
    }

    int64_t latch_nanos = 0;
    {
      const auto latch_start = Clock::Now();
      std::vector<std::unique_lock<std::shared_mutex>> latches;
      for (const auto& src : sources) {
        for (size_t t = stagger_->TableTabletBegin(k);
             t < stagger_->TableTabletEnd(k); ++t) {
          latches.emplace_back(src->tablet_latch(t));
        }
      }
      // a = tables latched, b = tablet index (acquire) / nanos (release).
      MORPH_TRACE("transform.sync.latch_acquire",
                  static_cast<int64_t>(sources.size()),
                  static_cast<int64_t>(k));
      // Under the tablet latch; a crash here unwinds the RAII latches,
      // exactly as a real process kill would discard them.
      MORPH_FAILPOINT("transform.tablet.sync");

      const Lsn end = db_->wal()->LastLsn();
      const Lsn g = next_lsn_.load(std::memory_order_acquire);
      if (end >= g) {
        // A *global* pass, completions on, exactly like the whole-table
        // final pass (just over a far smaller window): every tablet is
        // activated by now, so the stream has nothing to skip, and
        // processing completions in order is what keeps this pass from
        // blocking on a stale mirrored lock — a tablet-scoped pass that
        // skipped completions could wait out a full lock timeout under the
        // latch when a later record conflicted with the mirror of an
        // earlier-committed transaction whose completion it had skipped.
        auto n = PropagateRange(g, end, /*throttled=*/false);
        if (!n.ok()) {
          const std::string reason =
              "tablet sync pass failed: " + n.status().ToString();
          if (stagger_->AnyMigrated()) return fail_late(reason);
          AbortTransformation(reason, &stats);
          return stats;
        }
        stats.log_records_processed += *n;
      }

      const txn::TxnEpoch sw = db_->AdvanceEpoch();
      // Old transactions holding source locks on this tablet's keys are
      // doomed (non-blocking abort, applied per tablet).
      for (const auto& t : db_->txns()->ActiveBefore(sw)) {
        for (const txn::RecordId& rid : db_->locks()->LocksOf(t->id())) {
          if (IsSourceTable(rid.table) && stagger_->TabletOf(rid.key) == k) {
            stats.txns_doomed++;
            break;
          }
        }
      }
      stagger_->MarkMigrated(k, end, sw, Clock::NanosSince(latch_start));
      if (k + 1 == T) {
        // The last tablet completes the switch; from here the whole-table
        // post-switch machinery (hook, drain) takes over.
        switch_epoch_.store(sw, std::memory_order_release);
        switched_.store(true, std::memory_order_release);
      }
      latch_nanos = stagger_->latch_nanos(k);
      stats.tablet_latch_nanos[k] = latch_nanos;
    }
    MORPH_TRACE("transform.sync.latch_release",
                static_cast<int64_t>(sources.size()), latch_nanos);
  }
  stats.sync_micros = Clock::MicrosSince(sync_t0);
  for (int64_t nanos : stats.tablet_latch_nanos) {
    stats.sync_latch_nanos = std::max(stats.sync_latch_nanos, nanos);
    MORPH_HISTOGRAM_NANOS("transform.sync.latch_nanos", nanos);
  }
  stats.sync_latch_micros = stats.sync_latch_nanos / 1000;
  MORPH_COUNTER_ADD("transform.txns_doomed", stats.txns_doomed);
  MORPH_FAILPOINT("transform.sync.after_switch");

  // Phase D — drain + finalize/drop/complete, shared with the whole-table
  // path. The global filter stays installed: migrated tablets keep applying
  // records newer than their sync pass (draining pre-switch writers).
  return FinishAndComplete(run_start, std::move(stats));
}

Status TransformCoordinator::SynchronizeAndSwitch(TransformStats* stats) {
  // Blocking commit only: gate new transactions off the involved tables and
  // wait for transactions holding source-table locks to finish.
  if (config_.strategy == SyncStrategy::kBlockingCommit) {
    {
      std::unique_lock lock(gate_mu_);
      gate_on_ = true;
      gate_epoch_ = db_->AdvanceEpoch();
    }
    const auto wait_start = Clock::Now();
    while (true) {
      MORPH_FAILPOINT("transform.sync.gate_wait");
      // Keep propagating while waiting so the final pass stays short.
      const Lsn end = db_->wal()->LastLsn();
      if (end >= next_lsn_) {
        auto n = PropagateRange(next_lsn_, end, /*throttled=*/false);
        if (!n.ok()) return n.status();
        stats->log_records_processed += *n;
      }
      bool source_locks_held = false;
      for (const auto& t : db_->txns()->ActiveBefore(gate_epoch_)) {
        for (const txn::RecordId& rid : db_->locks()->LocksOf(t->id())) {
          if (IsSourceTable(rid.table)) {
            source_locks_held = true;
            break;
          }
        }
        if (source_locks_held) break;
      }
      if (!source_locks_held) break;
      if (Clock::MicrosSince(wait_start) > config_.max_duration_micros) {
        std::unique_lock lock(gate_mu_);
        gate_on_ = false;
        gate_cv_.notify_all();
        return Status::Aborted("old transactions did not release source locks");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  // The common core: latch the source tables exclusively (in id order), do
  // one final propagation pass to the log end, and switch. The latch hold
  // time is the user-visible pause the paper reports as < 1 ms.
  MORPH_FAILPOINT("transform.sync.before_latch");
  std::vector<std::shared_ptr<storage::Table>> sources = rules_->Sources();
  std::sort(sources.begin(), sources.end(),
            [](const auto& a, const auto& b) { return a->id() < b->id(); });
  {
    const auto latch_start = Clock::Now();
    std::vector<std::unique_lock<std::shared_mutex>> latches;
    for (const auto& src : sources) {
      for (size_t t = 0; t < src->num_tablets(); ++t) {
        latches.emplace_back(src->tablet_latch(t));
      }
    }
    // a = tables latched, b = 0 (acquire) / latched nanos (release).
    MORPH_TRACE("transform.sync.latch_acquire",
                static_cast<int64_t>(sources.size()), 0);

    const Lsn end = db_->wal()->LastLsn();
    if (end >= next_lsn_) {
      auto n = PropagateRange(next_lsn_, end, /*throttled=*/false);
      if (!n.ok()) return n.status();
      stats->log_records_processed += *n;
    }

    // Latches are RAII: a crash thrown here releases them on unwind, which
    // is exactly the guarantee a real process kill gives (latches are not
    // durable state).
    MORPH_FAILPOINT("transform.sync.latched");
    const txn::TxnEpoch sw = db_->AdvanceEpoch();
    // Count the transactions the non-blocking-abort strategy dooms: old
    // transactions currently holding locks on the source tables.
    if (config_.strategy == SyncStrategy::kNonBlockingAbort) {
      for (const auto& t : db_->txns()->ActiveBefore(sw)) {
        for (const txn::RecordId& rid : db_->locks()->LocksOf(t->id())) {
          if (IsSourceTable(rid.table)) {
            stats->txns_doomed++;
            break;
          }
        }
      }
    }
    switch_epoch_.store(sw, std::memory_order_release);
    switched_.store(true, std::memory_order_release);
    stats->sync_latch_nanos = Clock::NanosSince(latch_start);
    stats->sync_latch_micros = stats->sync_latch_nanos / 1000;
    MORPH_HISTOGRAM_NANOS("transform.sync.latch_nanos",
                          stats->sync_latch_nanos);
    MORPH_TRACE("transform.sync.latch_release",
                static_cast<int64_t>(sources.size()),
                stats->sync_latch_nanos);
    MORPH_COUNTER_ADD("transform.txns_doomed", stats->txns_doomed);
  }

  if (config_.strategy == SyncStrategy::kBlockingCommit) {
    std::unique_lock lock(gate_mu_);
    gate_on_ = false;
    gate_cv_.notify_all();
  }
  // After the epoch flip and (for blocking commit) the gate release: the
  // switch is visible to clients but the drain has not started.
  MORPH_FAILPOINT("transform.sync.after_switch");
  return Status::OK();
}

Status TransformCoordinator::Drain(TransformStats* stats) {
  phase_.store(Phase::kDraining, std::memory_order_release);
  const auto drain_start = Clock::Now();
  const txn::TxnEpoch sw = switch_epoch_.load(std::memory_order_acquire);
  while (true) {
    MORPH_FAILPOINT("transform.drain.iteration");
    const Lsn end = db_->wal()->LastLsn();
    if (end >= next_lsn_) {
      auto n = PropagateRange(next_lsn_, end, /*throttled=*/true);
      if (!n.ok()) return n.status();
      stats->log_records_processed += *n;
      continue;
    }
    if (db_->txns()->ActiveBefore(sw).empty() && db_->wal()->LastLsn() < next_lsn_) {
      return Status::OK();
    }
    if (Clock::MicrosSince(drain_start) > config_.max_duration_micros) {
      return Status::Aborted(
          "pre-switch transactions did not finish during drain");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void TransformCoordinator::AbortTransformation(const std::string& reason,
                                               TransformStats* stats) {
  if (hook_registered_.load(std::memory_order_acquire)) {
    db_->ClearTransformHook();
    hook_registered_.store(false, std::memory_order_release);
  }
  {
    std::unique_lock lock(gate_mu_);
    gate_on_ = false;
  }
  gate_cv_.notify_all();
  tlocks_.Clear();
  rules_->DropTargets();
  phase_.store(Phase::kAborted, std::memory_order_release);
  stats->completed = false;
  stats->abort_reason = reason;
  FillPropagationStats(stats);
  MORPH_COUNTER_INC("transform.runs_aborted");
}

// --- TransformHook -------------------------------------------------------------

Status TransformCoordinator::OnOp(TxnId txn, txn::TxnEpoch epoch, TableId table,
                                  txn::Access access, const Row& pk,
                                  bool may_block) {
  const bool is_source = IsSourceTable(table);
  const bool is_target = IsTargetTable(table);
  if (!is_source && !is_target) return Status::OK();

  // Blocking-commit gate: park new transactions off the involved tables.
  // Fast path: one atomic load when the gate is off (the common case — this
  // runs twice per client operation for the whole transformation).
  if (gate_on_.load(std::memory_order_acquire)) {
    std::unique_lock lock(gate_mu_);
    if (gate_on_.load(std::memory_order_relaxed) && epoch >= gate_epoch_) {
      if (!may_block) {
        return Status::Busy("schema transformation switch-over in progress");
      }
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(config_.max_duration_micros);
      while (gate_on_.load(std::memory_order_relaxed) && epoch >= gate_epoch_) {
        if (gate_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
          return Status::Busy("timed out waiting for switch-over");
        }
      }
    }
  }

  if (!switched_.load(std::memory_order_acquire)) {
    // Staggered partial-migration window: tablets that already migrated
    // behave post-switch (per-tablet epoch), the rest behave pre-switch.
    if (stagger_ != nullptr && stagger_->AnyMigrated()) {
      if (is_source) {
        const size_t k = stagger_->TabletOf(pk);
        if (stagger_->state(k) == TabletState::kMigrated) {
          if (epoch >= stagger_->switch_epoch(k)) {
            return Status::Aborted(
                "table was transformed; access the transformed tables "
                "instead");
          }
          return Status::Aborted(
              "transaction doomed by schema transformation switch-over");
        }
        // Unmigrated tablet: pre-switch behavior (locks mirrored by the
        // propagator).
        return Status::OK();
      }
      // Target-table access is admitted per tablet, but only where the
      // target's keys partition the same way as the source's (otherwise a
      // record on this table may still be mid-migration even though the
      // key's source tablet migrated).
      if (rules_->TargetTabletAligned(table) && stagger_->IsMigratedKey(pk)) {
        return tlocks_.AcquireTarget(txn, txn::RecordId{table, pk}, access,
                                     may_block);
      }
      return Status::InvalidArgument(
          "table is still being built by a schema transformation");
    }
    if (is_target) {
      if (config_.continuous && access == txn::Access::kRead) {
        // A maintained materialized view is readable while it converges.
        return Status::OK();
      }
      return Status::InvalidArgument(
          "table is still being built by a schema transformation");
    }
    // Pre-switch source access flows freely; write locks are mirrored onto
    // the transformed tables by the log propagator.
    return Status::OK();
  }

  const txn::TxnEpoch sw = switch_epoch_.load(std::memory_order_acquire);
  if (is_source) {
    if (epoch >= sw) {
      if (rules_->KeepSource(table)) {
        // §5.2 alternative strategy: the source table is about to be
        // renamed into the transformed R — new transactions access it under
        // target-origin locks (Figure 2) like any transformed table.
        return tlocks_.AcquireTarget(txn, txn::RecordId{table, pk}, access,
                                     may_block);
      }
      return Status::Aborted(
          "table was transformed; access the transformed tables instead");
    }
    switch (config_.strategy) {
      case SyncStrategy::kBlockingCommit:
      case SyncStrategy::kNonBlockingAbort:
        // §3.4: transactions that were active on the source tables are
        // forced to abort.
        return Status::Aborted(
            "transaction doomed by schema transformation switch-over");
      case SyncStrategy::kNonBlockingCommit: {
        // §4.3: the operation must first get the corresponding locks on the
        // transformed-table records; "if a transaction cannot get a lock on
        // all implicated records in all tables, it is not allowed to go
        // forward with the operation."
        const std::vector<txn::RecordId> rids =
            rules_->AffectedTargets(table, pk);
        for (const txn::RecordId& rid : rids) {
          if (tlocks_.WouldBlockSource(rid, access, txn)) {
            return Status::Busy(
                "conflicting lock held on the transformed table");
          }
        }
        const txn::LockOrigin origin = OriginOf(table);
        for (const txn::RecordId& rid : rids) {
          tlocks_.AddTransferred(txn, rid, origin, access);
        }
        return Status::OK();
      }
    }
    return Status::Internal("unreachable");
  }

  // Post-switch access to a transformed table: acquire a target-origin lock
  // under the Figure 2 matrix; it waits for transferred source locks to be
  // released by the propagator.
  return tlocks_.AcquireTarget(txn, txn::RecordId{table, pk}, access, may_block);
}

Status TransformCoordinator::OnCommit(TxnId txn, txn::TxnEpoch epoch) {
  if (!switched_.load(std::memory_order_acquire)) {
    // Staggered: a transaction older than tablet k's switch that still holds
    // source locks on k is doomed even though the table-wide switch is
    // pending (its writes there can no longer be propagated consistently).
    if (stagger_ != nullptr && stagger_->AnyMigrated()) {
      for (const txn::RecordId& rid : db_->locks()->LocksOf(txn)) {
        if (!IsSourceTable(rid.table)) continue;
        const size_t k = stagger_->TabletOf(rid.key);
        if (stagger_->state(k) == TabletState::kMigrated &&
            epoch < stagger_->switch_epoch(k)) {
          return Status::Aborted(
              "transaction doomed by schema transformation switch-over");
        }
      }
    }
    return Status::OK();
  }
  if (epoch >= switch_epoch_.load(std::memory_order_acquire)) return Status::OK();
  if (config_.strategy == SyncStrategy::kNonBlockingCommit) return Status::OK();
  // Blocking commit / non-blocking abort: an old transaction still holding
  // source-table locks at commit time must abort instead.
  for (const txn::RecordId& rid : db_->locks()->LocksOf(txn)) {
    if (IsSourceTable(rid.table)) {
      return Status::Aborted(
          "transaction doomed by schema transformation switch-over");
    }
  }
  return Status::OK();
}

void TransformCoordinator::OnTxnFinished(TxnId txn, txn::TxnEpoch epoch) {
  if (switched_.load(std::memory_order_acquire)) {
    if (epoch >= switch_epoch_.load(std::memory_order_acquire)) {
      // Post-switch transactions release their target locks directly; old
      // transactions' transferred locks are released by the propagator when
      // it processes their completion record (§3.4).
      tlocks_.ReleaseTxn(txn);
    } else if (stagger_ != nullptr) {
      // Staggered run: a pre-switch transaction may nonetheless hold target
      // locks taken on tablets that migrated before it finished. Release
      // only those — its mirrored source locks must stay until the
      // propagator has applied its remaining ops (completion record, §3.4).
      tlocks_.ReleaseTxnTargetLocks(txn);
    }
    return;
  }
  if (stagger_ != nullptr && stagger_->AnyMigrated()) {
    tlocks_.ReleaseTxnTargetLocks(txn);
  }
}

}  // namespace morph::transform
