#include "transform/propagator.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "wal/log_record.h"

namespace morph::transform {

namespace {
constexpr Lsn kLsnMax = std::numeric_limits<Lsn>::max();
}

LogPropagator::LogPropagator(wal::Wal* wal, OperatorRules* rules,
                             txn::TransformLockTable* tlocks,
                             PriorityController* priority,
                             PropagatorConfig config)
    : wal_(wal),
      rules_(rules),
      tlocks_(tlocks),
      priority_(priority),
      config_(config) {
  if (config_.workers > 0) {
    if (config_.handoff == PropagatorHandoff::kRing) {
      HandoffOptions opts;
      opts.workers = config_.workers;
      opts.ring_capacity = config_.queue_capacity;
      handoff_ = std::make_unique<WorkerHandoff>(
          opts, [this](const HandoffItem& item) {
            return ApplyOp(item.op, item.origin);
          },
          [this](const Status& st) { RecordFailure(st); },
          [this](std::exception_ptr e) { RecordException(std::move(e)); },
          &failed_);
    } else {
      workers_.reserve(config_.workers);
      for (size_t i = 0; i < config_.workers; ++i) {
        workers_.push_back(std::make_unique<Worker>());
      }
      // Spawn after the vector is fully built: a worker thread must never
      // see workers_ resize under it.
      for (auto& w : workers_) {
        Worker* raw = w.get();
        raw->thread = std::thread([this, raw] { WorkerLoop(raw); });
      }
    }
    if (config_.adaptive) {
      AdaptiveController::Options aopts = config_.adaptive_options;
      aopts.parallel_workers = num_workers();
      adaptive_ = std::make_unique<AdaptiveController>(aopts);
    }
  }
}

LogPropagator::~LogPropagator() {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    std::unique_lock lock(w->mu);
    w->cv_nonempty.notify_all();
    w->cv_space.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // handoff_ (if any) stops and joins its own workers in its destructor.
}

void LogPropagator::SetSources(const std::vector<TableId>& source_ids) {
  sources_ = TableIdSet(source_ids);
  primary_source_ = source_ids.empty() ? 0 : source_ids[0];
}

Lsn LogPropagator::FloorLsn() const {
  if (handoff_) return handoff_->FloorLsn();
  Lsn floor = kLsnMax;
  for (const auto& w : workers_) {
    floor = std::min(floor, w->floor.load(std::memory_order_acquire));
  }
  return floor;
}

std::vector<PropagatorWorkerStats> LogPropagator::worker_stats() const {
  std::vector<PropagatorWorkerStats> out;
  out.reserve(num_workers() + 1);
  out.push_back(
      {inline_ops_applied_.load(std::memory_order_relaxed), /*depth=*/0});
  if (handoff_) {
    for (const HandoffWorkerStats& s : handoff_->worker_stats()) {
      out.push_back({s.ops_applied, s.max_queue_depth});
    }
    return out;
  }
  for (const auto& w : workers_) {
    out.push_back({w->ops_applied.load(std::memory_order_relaxed),
                   w->max_queue_depth.load(std::memory_order_relaxed)});
  }
  return out;
}

Status LogPropagator::ApplyOp(const Op& op, txn::LockOrigin origin) {
  MORPH_FAILPOINT("transform.propagate.worker");
  std::vector<txn::RecordId> affected;
  MORPH_RETURN_NOT_OK(
      rules_->Apply(op, config_.maintain_locks ? &affected : nullptr));
  if (config_.maintain_locks && op.txn_id != kInvalidTxnId) {
    // §3.3: locks are maintained on the transformed-table records for the
    // whole transformation; conflicts among transferred locks are
    // impossible by Figure 2, so this never blocks.
    for (const txn::RecordId& rid : affected) {
      tlocks_->AddTransferred(op.txn_id, rid, origin, txn::Access::kWrite);
    }
  }
  ops_applied_.fetch_add(1, std::memory_order_relaxed);
  MORPH_COUNTER_INC("transform.propagate.ops");
  return Status::OK();
}

void LogPropagator::RecordFailure(const Status& st) {
  {
    std::unique_lock lock(err_mu_);
    if (first_error_.ok()) first_error_ = st;
  }
  failed_.store(true, std::memory_order_release);
  // A reader blocked on a full mutex queue must re-check the failed_ flag
  // (the ring path's full-ring spin polls it directly).
  for (auto& w : workers_) {
    std::unique_lock lock(w->mu);
    w->cv_space.notify_all();
  }
}

void LogPropagator::RecordException(std::exception_ptr e) {
  {
    std::unique_lock lock(err_mu_);
    if (!exception_) exception_ = std::move(e);
  }
  failed_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    std::unique_lock lock(w->mu);
    w->cv_space.notify_all();
  }
}

Status LogPropagator::TakeFailure() {
  if (!failed_.load(std::memory_order_acquire)) return Status::OK();
  // Workers are in drain-and-discard mode; wait until nothing is in flight,
  // then surface the failure on this (the coordinator) thread — exceptions
  // (CrashException from a crash failpoint) must not escape a std::thread.
  // With failed_ set the ring flush inside discards instead of pushing, so
  // no failpoint re-fires here.
  if (handoff_) {
    (void)handoff_->JoinPhase();
  } else {
    WaitDrained();
  }
  std::unique_lock lock(err_mu_);
  if (exception_) std::rethrow_exception(exception_);
  return first_error_;
}

void LogPropagator::WorkerLoop(Worker* w) {
  for (;;) {
    Item item;
    {
      std::unique_lock lock(w->mu);
      w->cv_nonempty.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) || !w->queue.empty();
      });
      if (w->queue.empty()) return;  // stopped and drained
      item = std::move(w->queue.front());
      w->queue.pop_front();
      w->busy = true;
      // The floor stays at the in-flight op's LSN until the apply finishes:
      // FloorLsn() must never pass an op that has not fully landed.
      w->floor.store(item.op.lsn, std::memory_order_release);
      w->cv_space.notify_all();
    }
    bool applied = false;
    if (!failed_.load(std::memory_order_acquire)) {
      try {
        const Status st = ApplyOp(item.op, item.origin);
        if (st.ok()) {
          applied = true;
        } else {
          RecordFailure(st);
        }
      } catch (...) {
        RecordException(std::current_exception());
      }
    }
    if (applied) w->ops_applied.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock lock(w->mu);
      w->busy = false;
      w->floor.store(w->queue.empty() ? kLsnMax : w->queue.front().op.lsn,
                     std::memory_order_release);
      if (w->queue.empty()) w->cv_space.notify_all();
    }
  }
}

void LogPropagator::Enqueue(size_t worker, Item item) {
  Worker& w = *workers_[worker];
  std::unique_lock lock(w.mu);
  const auto can_enqueue = [&] {
    return w.queue.size() < config_.queue_capacity ||
           failed_.load(std::memory_order_acquire) ||
           stop_.load(std::memory_order_acquire);
  };
  if (!can_enqueue()) {
    // Backpressure: the reader is outpacing this worker. Account the stall
    // so a mistuned queue capacity or a skewed partition shows up in the
    // metrics instead of only as mysteriously low throughput.
    MORPH_COUNTER_INC("transform.propagate.backpressure_stalls");
    const auto stall_start = Clock::Now();
    w.cv_space.wait(lock, can_enqueue);
    const int64_t stall_nanos = Clock::NanosSince(stall_start);
    MORPH_HISTOGRAM_NANOS("transform.propagate.stall_nanos", stall_nanos);
    // a = op LSN the reader was trying to hand off, b = worker index.
    MORPH_TRACE("transform.propagate.stall", static_cast<int64_t>(item.op.lsn),
                static_cast<int64_t>(worker));
  }
  if (failed_.load(std::memory_order_acquire) ||
      stop_.load(std::memory_order_acquire)) {
    return;  // drain-and-discard: the failure surfaces via TakeFailure()
  }
  if (w.queue.empty() && !w.busy) {
    w.floor.store(item.op.lsn, std::memory_order_release);
  }
  w.queue.push_back(std::move(item));
  // Single writer (the reader thread), so load+store needs no CAS.
  if (w.queue.size() > w.max_queue_depth.load(std::memory_order_relaxed)) {
    w.max_queue_depth.store(w.queue.size(), std::memory_order_relaxed);
  }
  w.cv_nonempty.notify_one();
}

void LogPropagator::WaitDrained() {
  for (auto& w : workers_) {
    std::unique_lock lock(w->mu);
    w->cv_space.wait(lock, [&] { return w->queue.empty() && !w->busy; });
  }
}

Status LogPropagator::DrainWorkers() {
  if (handoff_) return handoff_->JoinPhase();
  WaitDrained();
  return Status::OK();
}

void LogPropagator::FlushReleases(bool all) {
  if (pending_releases_.empty()) return;
  const Lsn floor = all ? kLsnMax : FloorLsn();
  // pending_releases_ is LSN-ascending (the reader pushes in scan order),
  // so a prefix check suffices. front.lsn < floor means every op of that
  // transaction (all at lower LSNs than its completion record) has been
  // applied — the §3.4 release rule, made barrier-free.
  while (!pending_releases_.empty() && pending_releases_.front().first < floor) {
    tlocks_->ReleaseTxn(pending_releases_.front().second);
    pending_releases_.pop_front();
  }
}

Status LogPropagator::DispatchData(Op op, txn::LockOrigin origin) {
  if (cur_workers_ > 0) {
    const RouteKey route = rules_->RoutingKey(op);
    if (route.kind == RouteKey::Kind::kKey) {
      const size_t widx = route.key.Hash() % cur_workers_;
      if (handoff_) {
        // Staged, not published: the whole scan block is pushed with one
        // release-store per worker at the end of the batch (or at the next
        // barrier), amortizing the handoff cost.
        handoff_->Stage(widx, Item{std::move(op), origin});
      } else {
        Enqueue(widx, Item{std::move(op), origin});
      }
      return Status::OK();
    }
    // Barrier op: every lower-LSN op must land first, then it runs alone on
    // the reader thread.
    MORPH_COUNTER_INC("transform.propagate.barrier_drains");
    MORPH_TRACE("transform.propagate.barrier_drain",
                static_cast<int64_t>(op.lsn), 0);
    MORPH_RETURN_NOT_OK(DrainWorkers());
    MORPH_RETURN_NOT_OK(TakeFailure());
  }
  const Status st = ApplyOp(op, origin);
  if (st.ok()) inline_ops_applied_.fetch_add(1, std::memory_order_relaxed);
  return st;
}

Status LogPropagator::ProcessRecord(const wal::LogRecord& rec) {
  switch (rec.type) {
    case wal::LogRecordType::kInsert:
    case wal::LogRecordType::kDelete:
    case wal::LogRecordType::kUpdate:
    case wal::LogRecordType::kClr: {
      if (!sources_.contains(rec.table_id)) return Status::OK();
      if (record_filter_ && !record_filter_(rec)) {
        MORPH_COUNTER_INC("transform.tablet.ops_skipped");
        return Status::OK();
      }
      auto op = Op::FromLogRecord(rec);
      if (!op) return Status::OK();
      const txn::LockOrigin origin = rec.table_id == primary_source_
                                         ? txn::LockOrigin::kSource0
                                         : txn::LockOrigin::kSource1;
      return DispatchData(*std::move(op), origin);
    }
    case wal::LogRecordType::kCommit:
    case wal::LogRecordType::kTxnEnd:
      // "Source table locks held in the transformed tables are released as
      // soon as the propagator has processed the [completion] log record of
      // the lock owner transaction" (§3.4). With workers, the release is
      // deferred until the floor passes this LSN (see class comment) so
      // commits do not serialize the pipeline.
      if (!process_completions_) return Status::OK();
      if (cur_workers_ == 0) {
        tlocks_->ReleaseTxn(rec.txn_id);
      } else {
        pending_releases_.emplace_back(rec.lsn, rec.txn_id);
      }
      return Status::OK();
    case wal::LogRecordType::kCcBegin:
    case wal::LogRecordType::kCcOk:
      // CC brackets are true barriers: the §5.3 verdict must observe every
      // lower-LSN op, or a late-arriving disturbance would be missed and an
      // unverified image blessed with a C flag.
      // a = bracket LSN, b = 0 for kCcBegin / 1 for kCcOk.
      MORPH_TRACE("transform.propagate.cc_bracket",
                  static_cast<int64_t>(rec.lsn),
                  rec.type == wal::LogRecordType::kCcOk ? 1 : 0);
      if (cur_workers_ > 0) {
        MORPH_COUNTER_INC("transform.propagate.barrier_drains");
      }
      MORPH_RETURN_NOT_OK(DrainWorkers());
      MORPH_RETURN_NOT_OK(TakeFailure());
      return rules_->OnControlRecord(rec);
    default:
      return Status::OK();
  }
}

Result<size_t> LogPropagator::PropagateRange(
    Lsn from, Lsn to, bool throttled, std::atomic<Lsn>* next_lsn,
    const std::function<bool()>& cancel) {
  size_t count = 0;
  next_lsn->store(from, std::memory_order_release);
  std::vector<wal::LogRecord> batch;
  if (num_workers() > 0) batch.reserve(config_.batch_size);
  Lsn next = from;
  Status failure;
  while (next <= to) {
    const auto batch_start = Clock::Now();
    const size_t count_before = count;
    // Pick this batch's mode. A parallel→serial transition (adaptive
    // collapse) drains the workers and flushes every deferred release
    // first, so the serial path starts from the fully-applied state its
    // eager lock releases assume.
    const size_t want =
        adaptive_ ? adaptive_->current_workers() : config_.workers;
    if (want != cur_workers_) {
      if (cur_workers_ > 0) {
        failure = DrainWorkers();
        if (failure.ok()) failure = TakeFailure();
        if (!failure.ok()) break;
        FlushReleases(/*all=*/true);
      }
      cur_workers_ = want;
    }
    const Lsn stop = std::min<Lsn>(to, next + config_.batch_size - 1);
    if (cur_workers_ == 0) {
      // Serial: zero-copy chunked scan, applying by reference under the
      // WAL's shared lock — copying every record out would make propagation
      // as expensive as the transactions that produced it (see Wal::Scan).
      // Checked: a truncation racing past the reader means records this
      // transformation never applied are gone — propagating past the hole
      // would silently lose updates, so the transformation fails instead.
      auto scanned = wal_->ScanChecked(next, stop, [&](const wal::LogRecord& rec) {
        if (!failure.ok()) return;
        failure = ProcessRecord(rec);
        count++;
      });
      if (failure.ok() && !scanned.ok()) failure = scanned.status();
    } else {
      // Parallel: copy the batch out under one brief shared-lock
      // acquisition (Wal::ScanInto), then dispatch without holding any WAL
      // lock — blocking on worker backpressure with the log's lock held
      // would stall every appender with it. The copy cost is overlapped by
      // the workers applying the previous batch.
      batch.clear();
      auto scanned = wal_->ScanIntoChecked(next, stop, config_.batch_size, &batch);
      if (!scanned.ok()) {
        failure = scanned.status();
        break;
      }
      for (const wal::LogRecord& rec : batch) {
        failure = ProcessRecord(rec);
        count++;
        if (!failure.ok()) break;
      }
      if (failure.ok() && handoff_) {
        // Publish the staged scan block: one release-store per worker.
        failure = handoff_->FlushStaged();
      }
    }
    MORPH_COUNTER_INC("transform.propagate.batches");
    MORPH_COUNTER_ADD("transform.propagate.records", count - count_before);
    // a = first LSN of the batch, b = records processed in it.
    MORPH_TRACE("transform.propagate.batch", static_cast<int64_t>(next),
                static_cast<int64_t>(count - count_before));
    const int64_t batch_nanos = Clock::NanosSince(batch_start);
    if (!failure.ok()) break;
    next = stop + 1;
    next_lsn->store(next, std::memory_order_release);
    FlushReleases(/*all=*/false);
    if (failed_.load(std::memory_order_acquire)) break;
    if (adaptive_) adaptive_->OnBatch(count - count_before, batch_nanos);
    if (throttled) {
      // The duty cycle gates the reader stage only; workers drain whatever
      // the reader admits. The slice measured is the reader's scan+dispatch
      // time, so a low-priority transformation stays a light background
      // load no matter how many workers it owns.
      priority_->OnWorkDone(batch_nanos);
      if (cancel && cancel()) break;
    }
  }
  // Whatever the exit path: leave no op in flight and no release pending,
  // so callers observe a fully applied prefix (and propagated_lsn() ==
  // reader position again).
  {
    const Status drained = DrainWorkers();
    if (failure.ok()) failure = drained;
  }
  MORPH_RETURN_NOT_OK(TakeFailure());  // rethrows a worker CrashException
  FlushReleases(/*all=*/true);
  MORPH_RETURN_NOT_OK(failure);
  return count;
}

}  // namespace morph::transform
