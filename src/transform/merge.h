#pragma once

#include <atomic>
#include <string>

#include "engine/database.h"
#include "transform/operator_rules.h"

namespace morph::transform {

/// \brief Specification of a horizontal merge transformation T = R ∪ S.
///
/// The paper's conclusion asks for "methods for other relational operators"
/// beyond FOJ and split (§7); merge is the natural complement to the
/// horizontal split operator: it consolidates two tables with *identical
/// schemas and disjoint primary-key sets* (e.g. two partitions, or a hot
/// table plus its archive) into one, online.
struct MergeSpec {
  std::string r_table;
  std::string s_table;
  std::string target_table = "t_merged";
};

/// \brief Merge propagation rules.
///
/// Unlike the FOJ case, every record of the merged table T is a verbatim
/// copy of exactly one source record, so its LSN is a *valid state
/// identifier* and every rule is a straightforward LSN-gated redo:
///
///  - insert x(k): insert into T, or overwrite if T's copy is older;
///  - delete x(k): delete from T if T's copy is older than the operation;
///  - update x(k): apply the changed columns if T's copy is older.
///
/// The disjoint-key contract is a user constraint. Transient overlaps from
/// fuzzy anomalies (a transaction moving a record between R and S during
/// the initial scan) converge automatically: the delete and insert records
/// replay in log order against the same T key.
class MergeRules : public OperatorRules {
 public:
  static Result<std::unique_ptr<MergeRules>> Make(engine::Database* db,
                                                  MergeSpec spec);

  bool IsSource(TableId id) const override {
    return id == r_->id() || id == s_->id();
  }
  Status Prepare() override;
  Status InitialPopulate() override;
  Status Apply(const Op& op, std::vector<txn::RecordId>* affected) override;

  /// T is keyed by the sources' (disjoint) primary keys and every rule is
  /// an LSN-gated redo against T[k] only, so per-key LSN order suffices.
  RouteKey RoutingKey(const Op& op) const override {
    return RouteKey::Of(op.key);
  }

  std::vector<txn::RecordId> AffectedTargets(TableId table,
                                             const Row& pk) override;
  std::vector<std::shared_ptr<storage::Table>> Targets() const override {
    return {t_};
  }
  std::vector<std::shared_ptr<storage::Table>> Sources() const override {
    return {r_, s_};
  }
  Status DropTargets() override;

  /// Every rule is an LSN-gated redo against T[k] where k is the op's own
  /// (pk-preserving) key, so the merge decomposes by hash-range tablet.
  /// Both sources share one tablet geometry (uniform DatabaseOptions), so
  /// "tablet k" names the same key set in R, S, and T.
  bool SupportsStaggeredTablets() const override { return true; }

  const std::shared_ptr<storage::Table>& target() const { return t_; }

  struct Counters {
    size_t ops_applied = 0;
    size_t ops_ignored = 0;
  };
  Counters counters() const {
    return {counters_.ops_applied.load(), counters_.ops_ignored.load()};
  }

 private:
  MergeRules(engine::Database* db, MergeSpec spec,
             std::shared_ptr<storage::Table> r,
             std::shared_ptr<storage::Table> s)
      : db_(db), spec_(std::move(spec)), r_(std::move(r)), s_(std::move(s)) {}

  engine::Database* db_;
  MergeSpec spec_;
  std::shared_ptr<storage::Table> r_;
  std::shared_ptr<storage::Table> s_;
  std::shared_ptr<storage::Table> t_;

  /// Bumped from concurrent propagation workers; counters() snapshots.
  struct {
    std::atomic<size_t> ops_applied{0};
    std::atomic<size_t> ops_ignored{0};
  } counters_;
};

}  // namespace morph::transform
