#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "transform/op.h"
#include "transform/populate.h"
#include "transform/priority.h"
#include "txn/lock_manager.h"
#include "wal/log_record.h"

namespace morph::transform {

/// \brief Partition routing for the parallel log propagator (see
/// transform/propagator.h): where an op may execute relative to other ops.
///
/// Two ops whose routing keys compare equal are guaranteed to be applied in
/// LSN order on the same worker; ops with different keys may run
/// concurrently and in any relative order. A *barrier* op waits until every
/// worker has drained all lower-LSN ops, then runs alone on the reader
/// thread — it serializes against everything, which is always safe.
struct RouteKey {
  enum class Kind : uint8_t {
    kBarrier,  ///< serialize against all in-flight ops (the safe default)
    kKey,      ///< serialize only against ops with an equal key
  };
  Kind kind = Kind::kBarrier;
  Row key;

  static RouteKey Barrier() { return RouteKey{}; }
  static RouteKey Of(Row k) {
    return RouteKey{Kind::kKey, std::move(k)};
  }
};

/// \brief The operator-specific half of a transformation, plugged into the
/// generic four-step TransformCoordinator (paper §3).
///
/// Implementations: FojRules (paper §4, one-to-many and many-to-many) and
/// SplitRules (paper §5, with counters and C/U consistency flags).
///
/// Threading contract: Prepare / InitialPopulate are called from the single
/// coordinator thread; InitialPopulate may internally fan out across
/// population workers (transform/populate.h) — any threads it spawns are
/// joined, and their failures funneled, before it returns, so to the
/// coordinator it remains one synchronous call. Apply is called from the
/// propagator's worker threads
/// — concurrently for ops whose RoutingKey()s differ, in LSN order from one
/// thread for ops whose keys are equal (propagate_workers = 0 degenerates
/// to all ops on the coordinator thread). OnControlRecord and
/// RunConsistencyCheck run on the coordinator thread only after every
/// worker has drained (barrier), never concurrently with Apply.
/// AffectedTargets may additionally be called from client threads
/// (synchronous lock mirroring under non-blocking commit); it and Apply
/// must only use thread-safe table/index operations, and any rule-internal
/// state they touch (counters, CC bookkeeping) must be synchronized.
class OperatorRules {
 public:
  virtual ~OperatorRules() = default;

  /// \brief True if `id` is one of the transformation's source tables
  /// (whose log records must be propagated).
  virtual bool IsSource(TableId id) const = 0;

  /// \brief Preparation step: create the transformed table(s) and their
  /// indexes (paper §3.1).
  virtual Status Prepare() = 0;

  /// \brief Initial population step: fuzzy-read the source tables, apply
  /// the operator, insert the initial image into the transformed tables
  /// (paper §3.2). Called after the coordinator wrote the begin-fuzzy mark.
  virtual Status InitialPopulate() = 0;

  /// \brief Applies one normalized source-table operation to the
  /// transformed tables using the operator's propagation rules. Must be
  /// idempotent in the Theorem-1 sense: ops already reflected are ignored.
  ///
  /// If `affected` is non-null, the rule appends the RecordIds of every
  /// transformed-table record it touched (or found already reflecting the
  /// op) — the coordinator mirrors source locks onto exactly these.
  virtual Status Apply(const Op& op, std::vector<txn::RecordId>* affected) = 0;

  /// \brief Chooses the partition routing for `op` (parallel propagation).
  ///
  /// The invariant implementations must uphold: **any two ops that can read
  /// or write the same transformed-table record must map to equal routing
  /// keys** — they then reach the same worker and apply in LSN order, which
  /// is all that rules 1–11 and the Theorem-1 idempotency argument assume.
  /// Ops whose effects are confined to disjoint record sets may return
  /// different keys and run in any order. When in doubt, return a barrier:
  /// it is always correct, only slower. The default routes everything
  /// through the barrier, so operators opt *in* to parallelism.
  virtual RouteKey RoutingKey(const Op& op) const {
    (void)op;
    return RouteKey::Barrier();
  }

  /// \brief Handles a non-data log record the coordinator does not consume
  /// itself (the split rules use this for the CC_BEGIN / CC_OK brackets).
  /// Default: ignore.
  virtual Status OnControlRecord(const wal::LogRecord& rec) {
    (void)rec;
    return Status::OK();
  }

  /// \brief Transformed-table records *currently* corresponding to the
  /// source record (table, pk) — for synchronous lock mirroring before an
  /// old transaction's operation proceeds (non-blocking commit, §4.3).
  virtual std::vector<txn::RecordId> AffectedTargets(TableId table,
                                                     const Row& pk) = 0;

  /// \brief The transformed tables, for switch-over bookkeeping.
  virtual std::vector<std::shared_ptr<storage::Table>> Targets() const = 0;

  /// \brief The source tables, for latching and dropping.
  virtual std::vector<std::shared_ptr<storage::Table>> Sources() const = 0;

  /// \brief True when the operator has unresolved internal work that must
  /// finish before synchronization may start (the split's U-flagged
  /// records, paper §5.3: "all records in S should have a C-flag before
  /// synchronization is started"). Default: ready.
  virtual bool ReadyForSync() const { return true; }

  /// \brief One pass of operator-internal background maintenance, invoked
  /// between propagation iterations when the coordinator is configured with
  /// run_consistency_checker. The split rules implement the §5.3
  /// consistency checker here; other operators have nothing to do.
  virtual Result<size_t> RunConsistencyCheck(size_t max_records) {
    (void)max_records;
    return size_t{0};
  }

  /// \brief Deletes the transformed tables (transformation abort: "log
  /// propagation is stopped, and the transformed tables are deleted", §6).
  virtual Status DropTargets() = 0;

  /// \brief Completion-time finalization, before the coordinator drops the
  /// sources: operators that repurpose a source table (the split's §5.2
  /// alternative strategy renames T into R) do it here. Default: nothing.
  virtual Status FinalizeTargets() { return Status::OK(); }

  /// \brief True if `id` is a source table the coordinator must *not* drop
  /// at completion (because FinalizeTargets repurposed it). Default: drop.
  virtual bool KeepSource(TableId id) const {
    (void)id;
    return false;
  }

  /// \brief True when the operator can run as a staggered sequence of
  /// per-tablet sub-transforms (transform/tablet_manager.h). Requires that
  /// every propagation rule is LSN-gated per target record and decomposes by
  /// source primary key (so the key's hash-range tablet fully determines
  /// which target records an op can touch). Split, hsplit, and merge
  /// qualify; the FOJ does not — non-insert ops route through a barrier and
  /// an insert's effect depends on join-value state across the whole table.
  /// Default: not staggerable (the coordinator clamps to one tablet).
  virtual bool SupportsStaggeredTablets() const { return false; }

  /// \brief True when target table `id`'s records are keyed so that a
  /// source key in tablet k lands in target tablet k (same hash-range),
  /// letting a migrated-tablet client op acquire target locks that actually
  /// cover it. The split's S-side aggregates many source keys per bucket,
  /// so it is not aligned; everything pk-preserving is. Only consulted when
  /// SupportsStaggeredTablets(). Default: aligned.
  virtual bool TargetTabletAligned(TableId id) const {
    (void)id;
    return true;
  }

  /// \brief Installs the coordinator's priority controller so the bulky
  /// operator-internal work (initial population, CC scans) also runs at the
  /// transformation's background duty cycle. May be nullptr (no throttle).
  void set_throttle(PriorityController* throttle) { throttle_ = throttle; }

  /// \brief Installs the population-pipeline shape (worker count, batch
  /// size); called by the coordinator alongside set_throttle, from
  /// TransformConfig::populate_workers. Default: serial, 256-record
  /// batches.
  void set_populate_config(const PopulateConfig& config) {
    populate_config_ = config;
  }

 protected:
  /// Pays the duty-cycle cost of `work_nanos` of internal work.
  void Throttle(int64_t work_nanos) {
    if (throttle_ != nullptr) throttle_->OnWorkDone(work_nanos);
  }

  /// The pipeline shape InitialPopulate should run with.
  const PopulateConfig& populate_config() const { return populate_config_; }

  /// The raw controller, for the population pipeline's per-worker
  /// throttles (may be nullptr).
  PriorityController* throttle_controller() const { return throttle_; }

 private:
  PriorityController* throttle_ = nullptr;
  PopulateConfig populate_config_;
};

}  // namespace morph::transform
