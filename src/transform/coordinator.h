#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "common/clock.h"
#include "engine/database.h"
#include "engine/transform_hook.h"
#include "transform/operator_rules.h"
#include "transform/priority.h"
#include "transform/propagator.h"
#include "transform/table_id_set.h"
#include "transform/tablet_manager.h"
#include "txn/transform_locks.h"

namespace morph::transform {

/// \brief How user transactions are switched from the source tables to the
/// transformed tables at the end of the transformation (paper §3.4).
enum class SyncStrategy {
  /// Block new transactions on all involved tables, let old ones finish,
  /// then do the final propagation. Simple, but violates the non-blocking
  /// requirement — kept as the paper's strawman.
  kBlockingCommit,
  /// Latch the sources for one final propagation pass (< 1 ms), admit new
  /// transactions to the transformed tables immediately, and force
  /// transactions that were active on the source tables to abort. Locks
  /// they held are mirrored in the transformed tables and released as the
  /// propagator processes their rollback records.
  kNonBlockingAbort,
  /// Like non-blocking abort, but old transactions continue running against
  /// the source tables; their operations keep being propagated and their
  /// locks are acquired synchronously on the transformed tables (Figure 2
  /// compatibility), so non-conflicting old transactions are never aborted.
  kNonBlockingCommit,
};

std::string_view SyncStrategyToString(SyncStrategy s);

/// \brief What to do when the propagator cannot keep up with log generation
/// ("If more log records are produced than the propagator is able to
/// process, the synchronization is never started... the transformation
/// should either be aborted or get higher priority", paper §3.3).
enum class OnLag { kAbort, kBoostPriority };

struct TransformConfig {
  SyncStrategy strategy = SyncStrategy::kNonBlockingAbort;
  /// Initial duty cycle of the background propagator (0, 1].
  double priority = 1.0;
  /// Log records propagated per work slice between priority throttles.
  size_t batch_size = 512;
  /// Upper bound on records propagated per iteration, so the end-of-
  /// iteration analysis (paper §3.3) runs regularly even against a firehose
  /// writer. 0 = batch_size * 16.
  size_t max_records_per_iteration = 0;
  /// Start synchronization when the backlog drops below this many records.
  size_t sync_threshold = 512;
  /// Give up (abort the transformation) after this many propagation
  /// iterations without reaching the sync threshold.
  size_t max_iterations = 100000;
  /// Overall wall-clock guard for the whole transformation.
  int64_t max_duration_micros = 600'000'000;
  /// Mirror source-table locks onto the transformed tables during
  /// propagation (§3.3). Required for the non-blocking strategies.
  bool maintain_locks = true;
  /// Run the §5.3 consistency checker between propagation iterations
  /// (split transformations populated with assume_consistent = false).
  bool run_consistency_checker = false;
  size_t cc_batch = 32;
  /// Consecutive non-shrinking-backlog iterations before OnLag triggers.
  size_t lag_iterations = 16;
  OnLag on_lag = OnLag::kAbort;
  /// Drop the source tables once the transformation completes (§3.4:
  /// "Finally, the source tables are dropped from the schema").
  bool drop_sources = true;
  /// Materialized-view maintenance mode (the paper's §7: "using the
  /// technique to create other types of derived tables like Materialized
  /// Views is an obvious example"): there is no synchronization step or
  /// switch-over — the targets live alongside the sources and the
  /// propagator keeps them converging until RequestFinish(), which performs
  /// one final latched catch-up pass (delivering an action-consistent view)
  /// and completes without dooming transactions or dropping anything.
  /// Target tables are readable (but not writable) while maintained.
  bool continuous = false;
  /// How long a post-switch transaction waits for a mirrored source lock.
  int64_t target_lock_wait_micros = 2'000'000;
  /// Sentinel for propagate_workers: adaptive worker scaling. The
  /// propagator measures serial vs parallel records/sec on the live
  /// workload and runs whichever wins, re-probing periodically
  /// (transform/adaptive.h) — never slower than serial beyond a few
  /// percent of probing, which is the safe default on unknown hosts.
  static constexpr size_t kAutoWorkers = static_cast<size_t>(-1);
  /// Parallel log-propagation workers (see transform/propagator.h). 0 =
  /// serial: the same pipeline code runs with one inline worker on the
  /// coordinator thread. Ops are partitioned across workers by the
  /// operator's RoutingKey, so any value preserves per-record LSN order.
  /// kAutoWorkers = adaptive (see above).
  size_t propagate_workers = 0;
  /// Bounded per-worker queue capacity, in records. 0 = 2 * batch_size.
  size_t propagate_queue_capacity = 0;
  /// Reader→worker handoff mechanism: lock-free SPSC rings (the default)
  /// or the original mutex-guarded deques (kept as the differential-test
  /// reference and bench baseline).
  PropagatorHandoff propagate_handoff = PropagatorHandoff::kRing;
  /// Parallel initial-population workers (see transform/populate.h). 0 =
  /// serial: the same pipeline code runs inline on the coordinator thread.
  /// Scan work is partitioned by storage shard and operator build state by
  /// key hash, so any worker count yields the same target tables.
  size_t populate_workers = 0;
  /// Hash-range tablets to stagger the transformation across (see
  /// transform/tablet_manager.h): each tablet gets its own fuzzy scan,
  /// catch-up, and tablet-wide sync latch, so a concurrent writer only ever
  /// sees a latch covering 1/T of the key space. 1 = the whole-table path,
  /// bit-identical to a build without the tablet layer. Values > 1 are
  /// clamped back to 1 when staggering cannot apply: the operator does not
  /// decompose by tablet (FOJ), the strategy is not non-blocking abort,
  /// continuous mode, the §5.3 consistency checker (it verifies against
  /// whole-table scans), a source is kept (§5.2 reuse), or the involved
  /// tables do not share a multi-tablet latch geometry
  /// (DatabaseOptions::table_tablets).
  size_t tablets = 1;
};

/// \brief Per-run statistics returned by TransformCoordinator::Run().
///
/// A *view over the pipeline's atomic instruments*: every counter here is a
/// snapshot of the same relaxed atomics that feed the process-wide metrics
/// registry (`transform.propagate.*` counters, `transform.backlog` /
/// `transform.priority.*` gauges — see docs/ARCHITECTURE.md "Observability"),
/// so the serial and parallel propagation paths report through one
/// mechanism and the registry's process-cumulative counters can be
/// reconciled against per-run stats by delta.
struct TransformStats {
  bool completed = false;
  /// Why the transformation aborted (empty when completed).
  std::string abort_reason;

  int64_t prepare_micros = 0;
  int64_t populate_micros = 0;
  int64_t propagate_micros = 0;
  int64_t sync_micros = 0;
  /// The user-visible pause: wall time the source tables were latched
  /// exclusively for the final propagation pass (paper: "< 1 ms in our
  /// current implementation"). Nanosecond resolution; the _micros alias is
  /// derived.
  int64_t sync_latch_nanos = 0;
  int64_t sync_latch_micros = 0;
  int64_t drain_micros = 0;
  int64_t total_micros = 0;

  size_t log_records_processed = 0;
  size_t ops_propagated = 0;
  size_t iterations = 0;
  size_t txns_doomed = 0;  ///< non-blocking abort: old txns forced to abort
  double final_priority = 1.0;
  /// Realized duty cycle of the throttled propagation stages over the whole
  /// run (work / (work + sleep), from PriorityController::totals()); 1.0
  /// when nothing was throttled. Compare against final_priority to judge
  /// throttle fidelity; also exported live as the
  /// `transform.priority.achieved_ppm` gauge.
  double achieved_duty = 1.0;

  /// Parallel-propagation shape: *resolved* worker count (what the pipeline
  /// actually spawned — equals the configured value for fixed configs, the
  /// chosen parallel width for kAutoWorkers) and per-worker ops applied
  /// (entry 0 is the reader's inline worker — all ops when serial, barrier
  /// ops when parallel — followed by one entry per queue worker).
  size_t propagate_workers = 0;
  std::vector<size_t> worker_ops;
  /// Handoff mechanism the run used: "serial", "mutex" or "ring".
  std::string propagate_handoff;
  /// Adaptive mode (propagate_workers = kAutoWorkers): probe windows
  /// completed and parallel→serial / serial→parallel switches decided.
  size_t adaptive_probe_windows = 0;
  size_t adaptive_collapses = 0;
  size_t adaptive_expansions = 0;
  /// Log records processed per second of wall-clock propagation time.
  double propagate_records_per_sec = 0.0;

  /// Staggered-tablet shape: resolved tablet count (1 = whole-table path;
  /// the configured value may have been clamped, see TransformConfig) and
  /// each tablet's individual latched pause. For a staggered run
  /// sync_latch_nanos above reports the *maximum* per-tablet pause — the
  /// worst any single key's writer could have observed — not the sum.
  size_t tablets = 1;
  std::vector<int64_t> tablet_latch_nanos;
};

/// \brief Drives a transformation through the paper's four steps:
/// preparation → initial population → log propagation → synchronization
/// (§3), delegating operator specifics to an OperatorRules implementation
/// and registering itself as the engine's TransformHook for access gating
/// and lock mirroring.
///
/// Run() executes the whole transformation on the calling thread; callers
/// normally run it on a dedicated background thread while user transactions
/// keep executing. RequestAbort() (honoured until switch-over) stops
/// propagation and deletes the transformed tables, which is all an abort
/// takes (§6).
///
/// Client-cooperation contract: transactions doomed at switch-over learn
/// about it through Status::Aborted returned from their next operation or
/// commit; the client must then call Database::Abort (commit attempts do so
/// automatically). The drain phase waits for all pre-switch transactions to
/// finish.
class TransformCoordinator : public engine::TransformHook {
 public:
  TransformCoordinator(engine::Database* db,
                       std::shared_ptr<OperatorRules> rules,
                       TransformConfig config);
  ~TransformCoordinator() override;

  TransformCoordinator(const TransformCoordinator&) = delete;
  TransformCoordinator& operator=(const TransformCoordinator&) = delete;

  /// \brief Runs the transformation to completion (or abort). Returns the
  /// run's statistics; stats.completed / stats.abort_reason describe the
  /// outcome. A non-OK Result means an internal error, not a clean abort.
  Result<TransformStats> Run();

  /// \brief Asks the transformation to abort. Ignored after switch-over
  /// (the transformed tables are live by then).
  void RequestAbort() { abort_requested_.store(true, std::memory_order_release); }

  /// \brief Continuous (materialized-view) mode only: stop maintaining the
  /// view after one final latched catch-up pass. The view and the sources
  /// both survive.
  void RequestFinish() {
    finish_requested_.store(true, std::memory_order_release);
  }

  /// \brief Adjusts the propagator's priority while running.
  void set_priority(double p) { priority_.set_priority(p); }
  double priority() const { return priority_.priority(); }

  /// \brief Cumulative work/sleep accounting of the throttled stages (see
  /// PriorityController::DutyTotals). Sample a delta around a measurement
  /// window to get the duty cycle actually realized within it.
  PriorityController::DutyTotals duty_totals() const {
    return priority_.totals();
  }

  /// \brief While held, the coordinator keeps iterating log propagation and
  /// never enters synchronization, even with an empty backlog. Lets the DBA
  /// (or a test) choose the cut-over moment — e.g. wait for off-hours, as
  /// §6 recommends. Releasing the hold lets the normal backlog analysis
  /// decide again.
  void SetSyncHold(bool hold) {
    sync_hold_.store(hold, std::memory_order_release);
  }

  /// \brief Pauses/resumes log propagation (pre-synchronization only). A
  /// paused transformation consumes no CPU and performs no lag analysis —
  /// the DBA's "suspend during a traffic spike" control, and what the
  /// interference benchmarks use to interleave on/off measurement windows.
  void SetPaused(bool paused) {
    paused_.store(paused, std::memory_order_release);
  }

  enum class Phase {
    kIdle,
    kPreparing,
    kPopulating,
    kPropagating,
    kSynchronizing,
    kDraining,
    kCompleted,
    kAborted,
  };
  Phase phase() const { return phase_.load(std::memory_order_acquire); }

  /// \brief The transformed-table lock table (Figure 2 matrix) — exposed
  /// for tests and post-switch diagnostics.
  txn::TransformLockTable* transform_locks() { return &tlocks_; }

  /// \brief Everything below this LSN has been propagated (or predates the
  /// transformation). Log-archiving housekeeping must not truncate at or
  /// beyond the returned LSN. kInvalidLsn until propagation has started.
  ///
  /// With parallel workers this is the min-across-workers watermark: the
  /// reader's position capped by the lowest LSN still queued or in flight
  /// on any worker, so Wal::TruncateBefore safety is preserved while ops
  /// are buffered.
  Lsn propagated_lsn() const {
    const Lsn next = next_lsn_.load(std::memory_order_acquire);
    if (next == kInvalidLsn) return kInvalidLsn;
    Lsn floor = std::min(next, propagator_->FloorLsn());
    if (stagger_ != nullptr && !stagger_->AllActivated()) {
      // A staggered run's global cursor races ahead of tablets that have
      // not been populated yet; their local catch-up passes re-read the log
      // from the run's first begin-fuzzy floor, so truncation must hold
      // there until every tablet is active. The floor is fixed once (first
      // tablet's mark) and only ever replaced by the larger live watermark,
      // so the pin stays monotone.
      const Lsn stagger_floor =
          stagger_start_floor_.load(std::memory_order_acquire);
      if (stagger_floor != kInvalidLsn && stagger_floor < floor) {
        floor = stagger_floor;
      }
    }
    return floor;
  }

  /// The staggered-tablet state, or nullptr on the whole-table path —
  /// exposed for tests and observability.
  const TabletTransformManager* tablet_manager() const {
    return stagger_.get();
  }

  const OperatorRules* rules() const { return rules_.get(); }

  // --- engine::TransformHook -------------------------------------------
  Status OnOp(TxnId txn, txn::TxnEpoch epoch, TableId table, txn::Access access,
              const Row& pk, bool may_block) override;
  Status OnCommit(TxnId txn, txn::TxnEpoch epoch) override;
  void OnTxnFinished(TxnId txn, txn::TxnEpoch epoch) override;

 private:
  /// Processes log records [from, to] through the propagation pipeline;
  /// returns the count processed. `throttled` applies the priority duty
  /// cycle between batches.
  Result<size_t> PropagateRange(Lsn from, Lsn to, bool throttled);
  /// Copies pipeline counters (ops, per-worker shape, throughput) into
  /// `stats` on every Run() exit path.
  void FillPropagationStats(TransformStats* stats) const;

  /// The common synchronization core: latch sources exclusively, propagate
  /// to the log end, flip the switch atomically w.r.t. gated operations.
  Status SynchronizeAndSwitch(TransformStats* stats);
  /// Steps 2–4 of a staggered run (stagger_ != nullptr): one per-tablet
  /// sub-transform sequence — fuzzy scan, scoped populate, local catch-up,
  /// activation — then global convergence, per-tablet latched sync, and the
  /// shared drain/finalize epilogue. Called from Run() with the WAL
  /// retention pin already registered.
  Result<TransformStats> RunStaggered(const Clock::TimePoint& run_start,
                                      TransformStats stats);
  /// One local pass for transform tablet `k`: processes [from, to] through
  /// the pipeline applying only tablet k's data records, without moving the
  /// global cursor, then restores the global filter. `process_completions`
  /// is false for the latched sync pass (see
  /// LogPropagator::set_process_completions).
  Result<size_t> PropagateTabletPass(size_t k, Lsn from, Lsn to,
                                     bool process_completions, bool throttled);
  /// Post-switch tail shared by both paths: drain, finalize, drop sources,
  /// clear the hook, mark completed.
  Result<TransformStats> FinishAndComplete(const Clock::TimePoint& run_start,
                                           TransformStats stats);
  /// Post-switch drain: keep propagating until every pre-switch transaction
  /// has finished and the propagator has caught up.
  Status Drain(TransformStats* stats);
  /// Aborts the transformation: stop, drop targets, unregister.
  void AbortTransformation(const std::string& reason, TransformStats* stats);

  bool IsSourceTable(TableId id) const;
  bool IsTargetTable(TableId id) const;
  txn::LockOrigin OriginOf(TableId source_table) const;

  engine::Database* db_;
  std::shared_ptr<OperatorRules> rules_;
  TransformConfig config_;
  PriorityController priority_;
  txn::TransformLockTable tlocks_;

  std::atomic<Phase> phase_{Phase::kIdle};
  std::atomic<bool> abort_requested_{false};
  std::atomic<bool> sync_hold_{false};
  std::atomic<bool> paused_{false};
  std::atomic<bool> finish_requested_{false};
  std::atomic<bool> hook_registered_{false};

  /// Next log record the propagation reader will read. Written only by the
  /// coordinator thread (via LogPropagator::PropagateRange); read
  /// concurrently (e.g. by log-truncation housekeeping via
  /// propagated_lsn()).
  std::atomic<Lsn> next_lsn_{kInvalidLsn};

  /// Floor backing the WAL retention pin Run() registers: the oldest log
  /// record this transformation may still need. Starts at the log's first
  /// retained LSN (conservative — propagation start is not known yet),
  /// advances to start_lsn once the fuzzy mark fixes it, and is superseded
  /// by the live propagation watermark (propagated_lsn()) as soon as
  /// propagation begins. Never retreats, which is what makes the pin's
  /// pre-truncate evaluation safe (see Wal::AddRetentionPin).
  std::atomic<Lsn> retention_floor_{kInvalidLsn};

  /// Blocking-commit gate: when on, operations of transactions with epoch
  /// >= gate_epoch_ on involved tables park here. gate_on_ is an atomic so
  /// the overwhelmingly common "gate off" case costs one relaxed load on
  /// the client op path instead of a contended mutex acquisition.
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  std::atomic<bool> gate_on_{false};
  txn::TxnEpoch gate_epoch_ = 0;  ///< guarded by gate_mu_

  /// Set at switch-over. Transactions with epoch < switch_epoch_ are "old".
  /// A staggered run flips these only when its *last* tablet migrates; the
  /// partial-migration window in between is governed per tablet by
  /// stagger_'s state (see OnOp / OnCommit / OnTxnFinished).
  std::atomic<bool> switched_{false};
  std::atomic<txn::TxnEpoch> switch_epoch_{0};

  /// Staggered-tablet state; nullptr = whole-table path. Created in the
  /// constructor (never mutated afterwards), so hook and housekeeping
  /// threads may read the pointer without synchronization.
  std::unique_ptr<TabletTransformManager> stagger_;
  /// First tablet's begin-fuzzy floor — the staggered run's WAL retention
  /// requirement until every tablet is active (see propagated_lsn()).
  std::atomic<Lsn> stagger_start_floor_{kInvalidLsn};

  /// Source/target table id caches (valid after Prepare). The vectors keep
  /// OperatorRules order (source_ids_[0] owns LockOrigin::kSource0); the
  /// sets serve the membership tests on the hook and propagation hot paths.
  std::vector<TableId> source_ids_;
  std::vector<TableId> target_ids_;
  TableIdSet source_set_;
  TableIdSet target_set_;

  /// The propagation pipeline. Declared last: its destructor joins the
  /// worker threads, which touch rules_/tlocks_/priority_, so it must be
  /// destroyed before any of them.
  std::unique_ptr<LogPropagator> propagator_;
};

}  // namespace morph::transform
