#pragma once

#include <algorithm>
#include <vector>

#include "common/types.h"

namespace morph::transform {

/// \brief A tiny immutable set of table ids over a sorted vector.
///
/// A transformation involves a handful of tables (at most four today:
/// FOJ's two sources + one target, a split's one source + two targets), so
/// membership tests were written as linear scans in several places in the
/// coordinator. This consolidates them behind one type; binary search over a
/// sorted vector keeps the partitioner's per-record hot path branch-cheap
/// and cache-resident.
class TableIdSet {
 public:
  TableIdSet() = default;
  explicit TableIdSet(std::vector<TableId> ids) : ids_(std::move(ids)) {
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  }

  bool contains(TableId id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  bool empty() const { return ids_.empty(); }
  size_t size() const { return ids_.size(); }

 private:
  std::vector<TableId> ids_;
};

}  // namespace morph::transform
