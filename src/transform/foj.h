#pragma once

#include <atomic>
#include <optional>
#include <string>

#include "engine/database.h"
#include "transform/operator_rules.h"

namespace morph::transform {

/// \brief Specification of a full outer join transformation
/// T = R ⟗ S on R.r_join_column = S.s_join_column (paper §4).
struct FojSpec {
  std::string r_table;
  std::string s_table;
  std::string r_join_column;
  std::string s_join_column;
  /// Name of the transformed table created during preparation.
  std::string target_table = "t_transformed";
  /// One-to-many mode (default) assumes the join attribute is unique in S
  /// and uses the paper's rules 1–7. Many-to-many mode implements the §4.2
  /// sketch: T is keyed by both source keys and R-side operations fan out
  /// over every matching S record.
  bool many_to_many = false;
  /// Column-name prefixes used in the transformed table ("r_" + name).
  std::string r_prefix = "r_";
  std::string s_prefix = "s_";
};

/// \brief FOJ propagation rules (paper §4).
///
/// The transformed table T holds Concat(r_row, s_row); records without a
/// join partner are padded with the r-null / s-null record. T's physical
/// primary key is (R-key columns, S-key columns) — at least one candidate
/// key from each source, as §3.1 requires — which is unique in both the
/// one-to-many and many-to-many cases, including for the padding records.
///
/// Four indexes are created on T during preparation (§4.1): the R-key and
/// S-key column sets (identifying T-records by either source record) and
/// the R-side and S-side join columns. "All records with join value x" is
/// the union of the two join indexes at x, which covers matched records
/// (both sides = x) as well as one-sided padding records.
///
/// A record in T has **no valid state identifier** (it merges two source
/// records, §4.2), so none of these rules compares LSNs; idempotency rests
/// on the paper's Theorem 1 — every record already in T is at least as new
/// as the log record being propagated, so "already there" means "already
/// reflected, ignore".
class FojRules : public OperatorRules {
 public:
  /// \brief Validates the spec against the catalog. Fails if the source
  /// tables don't exist or the join columns are unknown.
  static Result<std::unique_ptr<FojRules>> Make(engine::Database* db,
                                                FojSpec spec);

  bool IsSource(TableId id) const override {
    return id == r_->id() || id == s_->id();
  }

  Status Prepare() override;
  Status InitialPopulate() override;
  Status Apply(const Op& op, std::vector<txn::RecordId>* affected) override;
  RouteKey RoutingKey(const Op& op) const override;
  std::vector<txn::RecordId> AffectedTargets(TableId table,
                                             const Row& pk) override;
  std::vector<std::shared_ptr<storage::Table>> Targets() const override {
    return {t_};
  }
  std::vector<std::shared_ptr<storage::Table>> Sources() const override {
    return {r_, s_};
  }
  Status DropTargets() override;

  const std::shared_ptr<storage::Table>& target() const { return t_; }
  const FojSpec& spec() const { return spec_; }

  /// \brief Diagnostic counters (a point-in-time snapshot).
  struct Counters {
    size_t ops_applied = 0;
    size_t ops_ignored = 0;  ///< already reflected (Theorem-1 skips)
  };
  Counters counters() const {
    return {counters_.ops_applied.load(), counters_.ops_ignored.load()};
  }

 private:
  FojRules(engine::Database* db, FojSpec spec,
           std::shared_ptr<storage::Table> r, std::shared_ptr<storage::Table> s,
           size_t r_join_idx, size_t s_join_idx);

  // --- T-row helpers -----------------------------------------------------

  /// T row layout: R columns at [0, r_width), S columns at
  /// [r_width, r_width + s_width).
  Row MakeT(const Row& r_row, const Row& s_row) const {
    return Row::Concat(r_row, s_row);
  }
  Row RPart(const Row& t_row) const;
  Row SPart(const Row& t_row) const;
  /// Null-padding test via the source key columns (always non-null in a
  /// real source record).
  bool RPartNull(const Row& t_row) const;
  bool SPartNull(const Row& t_row) const;
  Row TKeyOf(const Row& t_row) const { return t_->schema().KeyOf(t_row); }

  /// Physical write helpers, tolerant in the Theorem-1 sense: an insert
  /// hitting AlreadyExists or a delete hitting NotFound means a newer state
  /// is already reflected, so they succeed silently. Touched target keys are
  /// appended to `affected`.
  Status InsertT(Row t_row, Lsn lsn, std::vector<txn::RecordId>* affected);
  Status DeleteT(const Row& t_key, std::vector<txn::RecordId>* affected);
  /// Delete + insert (the physical form of "update" when the T primary key
  /// changes, e.g. a padding record gaining a real source half).
  Status ReplaceT(const Row& old_key, Row new_row, Lsn lsn,
                  std::vector<txn::RecordId>* affected);
  /// In-place column mutation (T primary key unchanged).
  Status MutateT(const Row& t_key, const std::vector<uint32_t>& cols,
                 const std::vector<Value>& values, Lsn lsn,
                 std::vector<txn::RecordId>* affected);

  /// All T primary keys with join value `x` on either side (union of the
  /// two join indexes).
  std::vector<Row> LookupJoin(const Value& x) const;

  // --- rule bodies -------------------------------------------------------

  // Rule bodies. These implement the paper's many-to-many generalization
  // (§4.2 sketch); with a unique S-side join attribute every fan-out set
  // has at most one element and the code degenerates *exactly* to the
  // one-to-many rules 1–7 — the rule-level unit tests pin this down case by
  // case. `spec_.many_to_many` therefore only documents intent; both modes
  // run the same propagation code.
  Status InsertR(const Op& op, std::vector<txn::RecordId>* affected);
  Status InsertS(const Op& op, std::vector<txn::RecordId>* affected);
  Status DeleteR(const Op& op, std::vector<txn::RecordId>* affected);
  Status DeleteS(const Op& op, std::vector<txn::RecordId>* affected);
  Status UpdateR(const Op& op, std::vector<txn::RecordId>* affected);
  Status UpdateS(const Op& op, std::vector<txn::RecordId>* affected);

  /// Insert-side fan-out shared by InsertR and the join-attribute branch of
  /// UpdateR: materializes `r_row` against every matching S-part currently
  /// in T (upgrading s-null padding records), or as t^y_null if none.
  Status InsertRImage(const Row& r_row, std::vector<txn::RecordId>* affected,
                      Lsn lsn);
  /// Mirror image for S-side inserts / join-attribute updates.
  Status InsertSImage(const Row& s_row, std::vector<txn::RecordId>* affected,
                      Lsn lsn);

  /// Applies the op's column updates to a source-row image (R or S side).
  static Row ApplyUpdates(const Row& row, const Op& op);

  engine::Database* db_;
  FojSpec spec_;
  std::shared_ptr<storage::Table> r_;
  std::shared_ptr<storage::Table> s_;
  std::shared_ptr<storage::Table> t_;

  size_t r_width_ = 0;
  size_t s_width_ = 0;
  size_t r_join_idx_ = 0;  ///< join column in R's schema
  size_t s_join_idx_ = 0;  ///< join column in S's schema
  size_t t_rjoin_col_ = 0;
  size_t t_sjoin_col_ = 0;

  storage::SecondaryIndex* idx_rkey_ = nullptr;
  storage::SecondaryIndex* idx_skey_ = nullptr;
  storage::SecondaryIndex* idx_rjoin_ = nullptr;
  storage::SecondaryIndex* idx_sjoin_ = nullptr;

  /// Bumped from concurrent propagation workers; counters() snapshots.
  struct {
    std::atomic<size_t> ops_applied{0};
    std::atomic<size_t> ops_ignored{0};
  } counters_;
};

}  // namespace morph::transform
