#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "common/metrics.h"
#include "common/types.h"
#include "storage/tablet.h"
#include "txn/transaction.h"
#include "wal/log_record.h"

namespace morph::transform {

/// \brief Lifecycle of one hash-range tablet within a staggered
/// transformation.
///
///   kPending  — not yet populated; source-table ops on its keys are
///               *skipped* by the global propagation stream (its own
///               begin-fuzzy mark + local catch-up pass will cover them).
///   kActive   — populated and caught up; the global stream applies its
///               ops like the whole-table path would.
///   kMigrated — individually synchronized: its keys switched to the
///               transformed tables at its own sync LSN / epoch. The global
///               stream keeps applying its ops, but only those *after* the
///               sync pass already applied (lsn > sync_lsn) — the
///               remaining writers are pre-switch transactions still
///               draining.
enum class TabletState : uint8_t { kPending = 0, kActive = 1, kMigrated = 2 };

/// \brief Catalog-level bookkeeping for a transformation staggered across
/// hash-range tablets (ROADMAP item 2's single-node half).
///
/// The whole-table transformation latches every source exclusively once,
/// for one final catch-up pass — a pause every concurrent writer sees. The
/// staggered run instead sequences T per-tablet sub-transforms, each with
/// its own fuzzy mark, shard-scoped population, local catch-up, and its own
/// tablet-wide sync latch: user transactions on the other T-1 tablets never
/// observe a latch. This class owns the geometry (which keys belong to
/// which transform tablet, which table-level latches a transform tablet
/// covers) and the per-tablet state machine the coordinator and the
/// transform hook consult; the coordinator owns the sequencing.
///
/// Correctness rests on the operators' SupportsStaggeredTablets() contract:
/// every propagation rule is LSN-gated per target record and decomposes by
/// source primary key, so (a) the key's tablet fully determines which ops a
/// sub-transform must see, and (b) re-applying an op prefix after a crash
/// or across the local/global stream boundary is idempotent (Theorem 1).
///
/// Thread safety: per-tablet state is all relaxed-ordered-enough atomics —
/// transitions happen on the coordinator thread; readers are the
/// propagation filter (coordinator + propagation workers) and the client
/// transform hook. A tablet's sync_lsn / switch_epoch are written before
/// its state is released to kMigrated, so any reader that observes
/// kMigrated also observes them.
class TabletTransformManager {
 public:
  /// `num_shards`: the (uniform) source-table shard count. `table_tablets`:
  /// the (uniform) source-table latch granularity (Table::num_tablets()).
  /// `transform_tablets`: the requested stagger width T; clamped to a
  /// power of two in [1, table_tablets] so every transform tablet covers a
  /// whole number of table latches.
  TabletTransformManager(size_t num_shards, size_t table_tablets,
                         size_t transform_tablets);

  size_t num_tablets() const { return space_.num_tablets(); }

  /// Transform tablet owning `key` — valid for any involved table because
  /// all tables share one shard/tablet geometry (DatabaseOptions).
  size_t TabletOf(const Row& key) const { return space_.TabletOf(key); }

  /// Source shard range [begin, end) covered by transform tablet `k`
  /// (scopes the per-tablet populate scan).
  size_t ShardBegin(size_t k) const { return space_.ShardBegin(k); }
  size_t ShardEnd(size_t k) const { return space_.ShardEnd(k); }

  /// Table-latch range [begin, end) covered by transform tablet `k`:
  /// latching these tablet latches of every source pauses exactly the keys
  /// whose transform tablet is `k`.
  size_t TableTabletBegin(size_t k) const { return k * latches_per_tablet_; }
  size_t TableTabletEnd(size_t k) const {
    return (k + 1) * latches_per_tablet_;
  }

  TabletState state(size_t k) const {
    return static_cast<TabletState>(
        slots_[k].state.load(std::memory_order_acquire));
  }
  Lsn start_lsn(size_t k) const {
    return slots_[k].start_lsn.load(std::memory_order_acquire);
  }
  Lsn sync_lsn(size_t k) const {
    return slots_[k].sync_lsn.load(std::memory_order_acquire);
  }
  txn::TxnEpoch switch_epoch(size_t k) const {
    return slots_[k].switch_epoch.load(std::memory_order_acquire);
  }
  int64_t latch_nanos(size_t k) const {
    return slots_[k].latch_nanos.load(std::memory_order_acquire);
  }

  /// kPending → kActive: tablet `k` is populated and its local catch-up
  /// pass has converged with the global cursor; from here the global
  /// stream covers it. `start_lsn` is the tablet's begin-fuzzy floor.
  void Activate(size_t k, Lsn start_lsn);

  /// kActive → kMigrated, after the tablet's latched sync pass applied
  /// everything up to `sync_lsn` and the epoch advanced to `epoch` under
  /// the latch. `latch_nanos` is the tablet's user-visible pause.
  void MarkMigrated(size_t k, Lsn sync_lsn, txn::TxnEpoch epoch,
                    int64_t latch_nanos);

  bool AnyMigrated() const {
    return migrated_count_.load(std::memory_order_acquire) > 0;
  }
  bool AllMigrated() const {
    return migrated_count_.load(std::memory_order_acquire) ==
           space_.num_tablets();
  }
  bool AllActivated() const {
    return activated_count_.load(std::memory_order_acquire) ==
           space_.num_tablets();
  }
  size_t num_migrated() const {
    return migrated_count_.load(std::memory_order_acquire);
  }

  bool IsMigratedKey(const Row& key) const {
    return state(TabletOf(key)) == TabletState::kMigrated;
  }

  /// \brief Global-stream record filter: should the shared propagation
  /// cursor apply this data record?
  ///
  ///   pending  → no (the tablet's own mark + local pass will cover it);
  ///   active   → yes (normal whole-table semantics);
  ///   migrated → only records *after* its latched sync pass (the pass
  ///              already applied everything up to sync_lsn; records at or
  ///              below it reappear when the global cursor started behind
  ///              the tablet's local window, and re-application — while
  ///              idempotent — must not double-fire lock mirroring).
  bool ShouldApplyGlobal(const wal::LogRecord& rec) const {
    const TabletSlot& slot = slots_[space_.TabletOf(rec.key)];
    switch (static_cast<TabletState>(
        slot.state.load(std::memory_order_acquire))) {
      case TabletState::kPending:
        return false;
      case TabletState::kActive:
        return true;
      case TabletState::kMigrated:
        return rec.lsn > slot.sync_lsn.load(std::memory_order_acquire);
    }
    return true;
  }

  /// The above as a LogPropagator record filter.
  std::function<bool(const wal::LogRecord&)> GlobalFilter() const {
    return [this](const wal::LogRecord& rec) { return ShouldApplyGlobal(rec); };
  }

  /// Record filter for tablet `k`'s local passes (catch-up and sync):
  /// apply only its own keys' records.
  std::function<bool(const wal::LogRecord&)> LocalFilter(size_t k) const {
    return [this, k](const wal::LogRecord& rec) {
      return space_.TabletOf(rec.key) == k;
    };
  }

 private:
  struct TabletSlot {
    std::atomic<uint8_t> state{static_cast<uint8_t>(TabletState::kPending)};
    std::atomic<Lsn> start_lsn{kInvalidLsn};
    std::atomic<Lsn> sync_lsn{kInvalidLsn};
    std::atomic<txn::TxnEpoch> switch_epoch{0};
    std::atomic<int64_t> latch_nanos{0};
  };

  const storage::TabletSpace space_;
  const size_t latches_per_tablet_;
  std::unique_ptr<TabletSlot[]> slots_;
  std::atomic<size_t> activated_count_{0};
  std::atomic<size_t> migrated_count_{0};
};

}  // namespace morph::transform
