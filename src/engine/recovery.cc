#include "engine/recovery.h"

#include <unordered_map>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace morph::engine {

namespace {

/// Applies one data log record forward (redo).
Status RedoOne(const wal::LogRecord& rec, storage::Table* table) {
  switch (rec.type) {
    case wal::LogRecordType::kInsert: {
      storage::Record record;
      record.row = rec.after;
      record.lsn = rec.lsn;
      return table->Insert(std::move(record));
    }
    case wal::LogRecordType::kDelete:
      return table->Delete(rec.key);
    case wal::LogRecordType::kUpdate:
      return table->Mutate(rec.key, [&](storage::Record* r) {
        for (size_t i = 0; i < rec.updated_columns.size(); ++i) {
          r->row[rec.updated_columns[i]] = rec.after_values[i];
        }
        r->lsn = rec.lsn;
        return true;
      });
    case wal::LogRecordType::kClr:
      switch (rec.clr_action) {
        case wal::ClrAction::kUndoInsert:
          return table->Delete(rec.key);
        case wal::ClrAction::kUndoDelete: {
          storage::Record record;
          record.row = rec.after;
          record.lsn = rec.lsn;
          return table->Insert(std::move(record));
        }
        case wal::ClrAction::kUndoUpdate:
          return table->Mutate(rec.key, [&](storage::Record* r) {
            for (size_t i = 0; i < rec.updated_columns.size(); ++i) {
              r->row[rec.updated_columns[i]] = rec.after_values[i];
            }
            r->lsn = rec.lsn;
            return true;
          });
      }
      return Status::Corruption("bad CLR action");
    default:
      return Status::Internal("RedoOne on non-data record");
  }
}

bool IsDataRecord(wal::LogRecordType type) {
  switch (type) {
    case wal::LogRecordType::kInsert:
    case wal::LogRecordType::kDelete:
    case wal::LogRecordType::kUpdate:
    case wal::LogRecordType::kClr:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<Recovery::Stats> Recovery::Restart(wal::Wal* wal,
                                          storage::Catalog* catalog) {
  Stats stats;
  MORPH_COUNTER_INC("engine.recovery.runs");
  MORPH_FAILPOINT("engine.recovery.redo_pass");
  // Pass 1: analysis + redo.
  std::unordered_map<TxnId, Lsn> att;  // loser candidates -> last LSN
  Status redo_status;
  wal->Scan(wal->FirstLsn(), wal->LastLsn(), [&](const wal::LogRecord& rec) {
    stats.records_scanned++;
    switch (rec.type) {
      case wal::LogRecordType::kBegin:
        att[rec.txn_id] = rec.lsn;
        break;
      case wal::LogRecordType::kCommit:
      case wal::LogRecordType::kTxnEnd:
        att.erase(rec.txn_id);
        break;
      case wal::LogRecordType::kAbort:
        att[rec.txn_id] = rec.lsn;
        break;
      default:
        break;
    }
    if (!IsDataRecord(rec.type)) return;
    if (rec.txn_id != kInvalidTxnId) att[rec.txn_id] = rec.lsn;
    auto table = catalog->GetById(rec.table_id);
    if (table == nullptr) return;  // dropped table
    const Status st = RedoOne(rec, table.get());
    if (st.ok()) {
      stats.redone++;
    } else if (!redo_status.ok()) {
      // keep first error
    } else if (!st.IsNotFound() && !st.IsAlreadyExists()) {
      redo_status = st;
    }
  });
  MORPH_RETURN_NOT_OK(redo_status);

  // Pass 2: undo losers.
  MORPH_FAILPOINT("engine.recovery.undo_pass");
  stats.losers = att.size();
  MORPH_ASSIGN_OR_RETURN(stats.undone, UndoLosers(wal, catalog, att));
  MORPH_COUNTER_ADD("engine.recovery.records_redone", stats.redone);
  MORPH_COUNTER_ADD("engine.recovery.records_undone", stats.undone);
  // a = records redone, b = loser operations undone.
  MORPH_TRACE("engine.recovery.restart", static_cast<int64_t>(stats.redone),
              static_cast<int64_t>(stats.undone));
  return stats;
}

Result<Recovery::Stats> Recovery::RestartDurable(wal::Wal* wal,
                                                 const wal::WalOptions& options,
                                                 storage::Catalog* catalog) {
  MORPH_RETURN_NOT_OK(wal->OpenDurable(options));
  MORPH_ASSIGN_OR_RETURN(Stats stats, Restart(wal, catalog));
  // The undo pass appended CLRs and TXN_ENDs; they must reach the segment
  // chain before the engine reopens for business, or a second crash would
  // replay the same losers against already-compensated state.
  MORPH_RETURN_NOT_OK(wal->Sync(wal->LastLsn()));
  return stats;
}

Result<size_t> Recovery::UndoLosers(
    wal::Wal* wal, storage::Catalog* catalog,
    const std::unordered_map<TxnId, Lsn>& losers) {
  size_t undone = 0;
  for (const auto& [txn_id, last_lsn] : losers) {
    Lsn lsn = last_lsn;
    Lsn undo_chain_head = last_lsn;
    while (lsn != kInvalidLsn) {
      auto rec = wal->At(lsn);
      if (!rec.ok()) return rec.status();
      switch (rec->type) {
        case wal::LogRecordType::kInsert:
        case wal::LogRecordType::kDelete:
        case wal::LogRecordType::kUpdate: {
          // Fires once per compensated operation: a crash here leaves a
          // partially rolled-back loser whose already-written CLRs the next
          // Restart must skip via undo_next_lsn.
          MORPH_FAILPOINT("engine.recovery.undo_record");
          wal::LogRecord clr;
          clr.type = wal::LogRecordType::kClr;
          clr.txn_id = txn_id;
          clr.prev_lsn = undo_chain_head;
          clr.table_id = rec->table_id;
          clr.key = rec->key;
          clr.undo_next_lsn = rec->prev_lsn;
          switch (rec->type) {
            case wal::LogRecordType::kInsert:
              clr.clr_action = wal::ClrAction::kUndoInsert;
              clr.before = rec->after;
              break;
            case wal::LogRecordType::kDelete:
              clr.clr_action = wal::ClrAction::kUndoDelete;
              clr.after = rec->before;
              break;
            default:
              clr.clr_action = wal::ClrAction::kUndoUpdate;
              clr.updated_columns = rec->updated_columns;
              clr.before_values = rec->after_values;
              clr.after_values = rec->before_values;
              break;
          }
          const Lsn clr_lsn = wal->Append(clr);
          undo_chain_head = clr_lsn;
          auto table = catalog->GetById(rec->table_id);
          if (table != nullptr) {
            clr.lsn = clr_lsn;
            MORPH_RETURN_NOT_OK(RedoOne(clr, table.get()));
          }
          undone++;
          lsn = rec->prev_lsn;
          break;
        }
        case wal::LogRecordType::kClr:
          lsn = rec->undo_next_lsn;
          break;
        case wal::LogRecordType::kBegin:
          lsn = kInvalidLsn;
          break;
        default:
          lsn = rec->prev_lsn;
          break;
      }
    }
    wal::LogRecord end;
    end.type = wal::LogRecordType::kTxnEnd;
    end.txn_id = txn_id;
    end.prev_lsn = undo_chain_head;
    wal->Append(std::move(end));
  }
  return undone;
}

}  // namespace morph::engine
