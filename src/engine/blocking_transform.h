#pragma once

#include <memory>

#include "common/result.h"
#include "engine/database.h"
#include "storage/table.h"

namespace morph::engine {

/// \brief The classic *blocking* schema transformation — the paper's §1
/// baseline ("insert into select ... could easily take tens of minutes").
///
/// Both operations latch the involved source tables exclusively for the
/// entire read-transform-write, so every concurrent user transaction
/// touching them stalls for a window proportional to table size. The
/// benchmark bench_blocking_baseline contrasts that window with the
/// sub-millisecond synchronization pause of the non-blocking framework.
class BlockingTransform {
 public:
  struct Outcome {
    /// Microseconds the source tables were latched (the blocking window).
    int64_t blocked_micros = 0;
    /// Rows written to the target table(s).
    size_t rows_written = 0;
  };

  /// \brief Computes `t_out` = R FULL OUTER JOIN S on
  /// r[r_join_col] == s[s_join_col] while R and S are exclusively latched.
  /// `t_out` must be empty, with schema = R's columns followed by S's.
  static Result<Outcome> FullOuterJoin(Database* db, storage::Table* r,
                                       size_t r_join_col, storage::Table* s,
                                       size_t s_join_col,
                                       storage::Table* t_out);

  /// \brief Splits `t` into `r_out` (projection of r_cols, one row per T
  /// row) and `s_out` (distinct projection of s_cols, with reference
  /// counters) while T is exclusively latched.
  static Result<Outcome> Split(Database* db, storage::Table* t,
                               const std::vector<size_t>& r_cols,
                               const std::vector<size_t>& s_cols,
                               storage::Table* r_out, storage::Table* s_out);
};

}  // namespace morph::engine
