#pragma once

#include "common/row.h"
#include "common/status.h"
#include "common/types.h"
#include "txn/transaction.h"
#include "txn/transform_locks.h"

namespace morph::engine {

/// \brief Callback interface an active schema transformation registers with
/// the Database so it can observe and gate user operations.
///
/// The *data* path of the transformation is strictly log-based (the paper's
/// headline property), but two control-plane interactions need a direct
/// hook:
///
///  - **Access gating / routing at switch-over** (paper §3.4): with blocking
///    commit, new transactions touching the involved tables must wait; with
///    the non-blocking strategies, new transactions are admitted to the
///    transformed table while pre-switch transactions are aborted
///    (non-blocking abort) or drained (non-blocking commit).
///  - **Synchronous lock mirroring under non-blocking commit** (paper §4.3):
///    once old and new transactions coexist, a source-table operation must
///    acquire the corresponding lock on the transformed table *before*
///    proceeding, and vice versa — "if a transaction cannot get a lock on
///    all implicated records in all tables, it is not allowed to go forward
///    with the operation."
///
/// The engine calls OnOp *twice* per operation:
///
///  1. with `may_block = true`, before the record lock and the table latch
///     are taken — this is where the hook may park the caller (blocking-
///     commit gate, waiting for a transferred lock). Blocking here is safe
///     because the caller holds no engine resources yet.
///  2. with `may_block = false`, after the shared table latch is held and
///     immediately before the WAL append — a cheap revalidation. Between
///     call 1 and the latch acquisition the transformation may have
///     performed its switch-over (it holds the latch exclusively to do so);
///     without the recheck, a stalled operation could slip a log record in
///     *after* the final propagation pass and be lost. The recheck must
///     never block (it would deadlock against the exclusive latch); it
///     returns Busy/Aborted instead, and lock-mirroring calls it makes are
///     idempotent re-acquisitions.
///
/// A non-OK return aborts the operation; the engine surfaces it to the
/// client, who is expected to abort the transaction.
class TransformHook {
 public:
  virtual ~TransformHook() = default;

  /// \brief Gate/observe an operation by `txn` (with epoch `epoch`) on
  /// `table`. `access` distinguishes reads from writes; `pk` is the primary
  /// key of the record touched. See the class comment for the two-phase
  /// calling convention around `may_block`.
  virtual Status OnOp(TxnId txn, txn::TxnEpoch epoch, TableId table,
                      txn::Access access, const Row& pk, bool may_block) = 0;

  /// \brief Gate a commit attempt. Returning non-OK makes the engine abort
  /// the transaction instead (used by the non-blocking-abort strategy to
  /// doom transactions that were active on the source tables at
  /// switch-over).
  virtual Status OnCommit(TxnId txn, txn::TxnEpoch epoch) = 0;

  /// \brief Notification that `txn` committed or finished aborting.
  virtual void OnTxnFinished(TxnId txn, txn::TxnEpoch epoch) = 0;
};

}  // namespace morph::engine
