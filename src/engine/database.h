#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/status.h"
#include "engine/transform_hook.h"
#include "storage/catalog.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"
#include "wal/wal.h"

namespace morph::engine {

/// \brief Engine configuration.
struct DatabaseOptions {
  /// Record-lock wait timeout (backstop; wait-die resolves deadlocks).
  int64_t lock_timeout_micros = 5'000'000;
  /// Shards per table hash heap. Kept below 64 so Table::ForEach's
  /// all-shard-locks pass stays under TSan's 64-held-mutexes cap.
  size_t table_shards = 32;
  /// Hash-range tablets per table (storage/tablet.h): the latch
  /// granularity, and the grain a staggered transformation migrates at.
  /// Clamped to a power of two in [1, table_shards]. 1 (the default) = one
  /// table-wide latch, bit-identical to the historical engine.
  size_t table_tablets = 1;
  /// Multigranularity locking: every record operation first takes an
  /// intention lock (IS for reads, IX for writes) on the table, letting
  /// clients use table-granularity LockTable() S/X locks that exclude or
  /// coexist with record-level activity by the classic matrix. Off by
  /// default: it costs one extra lock-manager round-trip per operation,
  /// which single-table workloads do not need.
  bool multigranularity_locking = false;
};

using TxnPtr = std::shared_ptr<txn::Transaction>;

/// \brief A single update to one column.
struct ColumnUpdate {
  size_t column;
  Value value;
};

/// \brief The transactional engine facade.
///
/// Ties the substrates together the way the paper's prototype DBMS does:
/// strict 2PL record locks (writes exclusive — no delta updates, §4.2),
/// ARIES-style WAL with undo producing CLRs, table latches taken in shared
/// mode for the span of every operation so a transformation's
/// synchronization step can pause a table by latching it exclusively (§3.4).
///
/// Thread model: each transaction is driven by one client thread; any number
/// of client threads plus background transformation threads may run
/// concurrently.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  storage::Catalog* catalog() { return &catalog_; }
  wal::Wal* wal() { return &wal_; }
  txn::LockManager* locks() { return &locks_; }
  txn::TransactionManager* txns() { return &txns_; }
  const DatabaseOptions& options() const { return options_; }

  /// \brief Creates a table (no logging: DDL durability is out of scope, as
  /// in the paper's prototype).
  Result<std::shared_ptr<storage::Table>> CreateTable(const std::string& name,
                                                      Schema schema);
  Status DropTable(const std::string& name);

  // --- transaction lifecycle -------------------------------------------

  /// \brief Begins a transaction (logs BEGIN).
  TxnPtr Begin();

  /// \brief Commits: logs COMMIT, releases locks, notifies any registered
  /// transformation hook. Before the in-memory apply, an admission check
  /// (Wal::WaitWritable) rides out an ENOSPC stall and otherwise returns a
  /// *retryable* Status with the transaction untouched — the caller may
  /// retry the Commit once space frees, or Abort. After admission, the
  /// commit is applied in memory first, then made durable (Wal::Sync). If
  /// Sync fails, in-memory state has diverged from the durable log — the
  /// already-applied effects cannot be unwound — so the engine halts: the
  /// failing Status is returned and every subsequent Commit is refused
  /// (see wal_failed()). A crash-failpoint CrashException propagates
  /// instead; the crash harness discards the incarnation, so no divergence
  /// is observable.
  Status Commit(const TxnPtr& t);

  /// \brief True once a commit's WAL sync has failed: volatile state no
  /// longer matches the durable log and the engine refuses further commits.
  bool wal_failed() const { return wal_failed_.load(std::memory_order_acquire); }

  /// \brief Aborts: logs ABORT, undoes this transaction's operations in
  /// reverse LSN order writing a CLR per undone operation, logs TXN_END,
  /// releases locks.
  Status Abort(const TxnPtr& t);

  // --- transactional data operations -----------------------------------

  /// \brief Inserts `row` into `table` under an exclusive record lock.
  Status Insert(const TxnPtr& t, storage::Table* table, Row row);

  /// \brief Deletes the record at `key`.
  Status Delete(const TxnPtr& t, storage::Table* table, const Row& key);

  /// \brief Applies partial column updates to the record at `key`. The log
  /// record deliberately carries only the changed columns (old + new
  /// values), matching the paper's assumption that update records are
  /// "less informative" than inserts (§4.2). Updates may not change the
  /// primary key (use Delete+Insert).
  Status Update(const TxnPtr& t, storage::Table* table, const Row& key,
                const std::vector<ColumnUpdate>& updates);

  /// \brief Reads the row at `key` under a shared record lock.
  Result<Row> Read(const TxnPtr& t, storage::Table* table, const Row& key);

  /// \brief Explicit table-granularity lock (requires
  /// DatabaseOptions::multigranularity_locking). A kShared table lock
  /// admits record readers (IS) but excludes record writers (IX); a
  /// kExclusive table lock excludes everything — the transactional
  /// equivalent of the physical latch the blocking baseline uses. Released
  /// with the transaction's other locks at commit/abort.
  Status LockTable(const TxnPtr& t, storage::Table* table, txn::LockMode mode);

  // --- bulk / maintenance ----------------------------------------------

  /// \brief Loads rows outside any user transaction (txn id 0), with WAL
  /// insert records so the load is recoverable. Intended for initial data
  /// population in tests/benchmarks.
  Status BulkLoad(storage::Table* table, const std::vector<Row>& rows);

  // --- transformation support -------------------------------------------

  /// \brief Registers/clears the hook of an active transformation. At most
  /// one transformation may be active at a time (returns AlreadyExists
  /// otherwise).
  Status SetTransformHook(TransformHook* hook);
  void ClearTransformHook();
  TransformHook* transform_hook() const {
    return hook_.load(std::memory_order_acquire);
  }

  /// \brief Current global epoch stamped onto transactions at Begin.
  txn::TxnEpoch current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// \brief Bumps the global epoch; returns the *new* value. Transactions
  /// that began before the bump have epoch < returned value. Used by
  /// transformation control points (drain start, switch-over).
  txn::TxnEpoch AdvanceEpoch() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

 private:
  /// Applies the inverse of `rec` to storage and writes a CLR.
  Status UndoOne(const TxnPtr& t, const wal::LogRecord& rec);

  /// Common per-operation prologue (before the table latch): hook gate
  /// (may block) + record lock.
  Status OpGate(const TxnPtr& t, storage::Table* table, const Row& key,
                txn::LockMode mode, txn::Access access);

  /// Post-latch, non-blocking hook revalidation (see TransformHook docs).
  Status Recheck(const TxnPtr& t, storage::Table* table, const Row& key,
                 txn::Access access);

  DatabaseOptions options_;
  wal::Wal wal_;
  storage::Catalog catalog_;
  txn::LockManager locks_;
  txn::TransactionManager txns_;
  std::atomic<TransformHook*> hook_{nullptr};
  std::atomic<txn::TxnEpoch> epoch_{0};
  /// Set when a commit was applied in memory but its WAL sync failed; the
  /// engine is then halted for new commits (see Commit docs).
  std::atomic<bool> wal_failed_{false};
};

}  // namespace morph::engine
