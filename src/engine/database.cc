#include "engine/database.h"

#include <shared_mutex>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace morph::engine {

Database::Database(DatabaseOptions options)
    : options_(options), locks_(options.lock_timeout_micros), txns_(&wal_) {}

Result<std::shared_ptr<storage::Table>> Database::CreateTable(
    const std::string& name, Schema schema) {
  return catalog_.CreateTable(name, std::move(schema), options_.table_shards,
                              options_.table_tablets);
}

Status Database::DropTable(const std::string& name) {
  return catalog_.DropTable(name);
}

TxnPtr Database::Begin() {
  MORPH_COUNTER_INC("engine.txn.begins");
  return txns_.Begin(epoch_.load(std::memory_order_acquire));
}

Status Database::Commit(const TxnPtr& t) {
  if (wal_failed_.load(std::memory_order_acquire)) {
    return Status::Internal(
        "engine halted: a prior commit was applied in memory but its WAL "
        "sync failed, so volatile state has diverged from the durable log");
  }
  if (TransformHook* hook = hook_.load(std::memory_order_acquire)) {
    const Status gate = hook->OnCommit(t->id(), t->epoch());
    if (!gate.ok()) {
      // Doomed by the transformation (non-blocking abort switch-over):
      // roll back instead.
      MORPH_RETURN_NOT_OK(Abort(t));
      return gate;
    }
  }
  // Admission check BEFORE the in-memory apply: if the WAL is stalled on
  // ENOSPC (or its writer already died), refuse the commit here with a
  // retryable Status while the transaction is still fully abortable. The
  // halt path below exists only for the unrecoverable ordering — apply
  // succeeded, sync failed — and a full disk must not be promoted into
  // that permanent outage when we can simply not apply yet.
  const Status admit = wal_.WaitWritable();
  if (!admit.ok()) {
    MORPH_COUNTER_INC("engine.txn.commit_backpressure");
    return admit;
  }
  MORPH_RETURN_NOT_OK(txns_.Commit(t));
  // WAL-before-return: a commit is only acknowledged once its commit record
  // is durable. In-memory mode this is a no-op; with a segmented WAL the
  // caller blocks until the group-commit writer's flush horizon passes the
  // commit record (many committers share one flush).
  const Status durable = wal_.Sync(t->last_lsn());
  if (!durable.ok()) {
    // The transaction already took effect in memory (txns_.Commit above) and
    // cannot be unwound — other readers may have seen it. Returning an error
    // while the effects stay visible would make this incarnation lie to its
    // caller, so the whole engine halts instead: no further commit is
    // accepted (the durable log is behind volatile state for good).
    wal_failed_.store(true, std::memory_order_release);
    MORPH_COUNTER_INC("engine.txn.wal_failed_halt");
    return durable;
  }
  MORPH_COUNTER_INC("engine.txn.commits");
  if (TransformHook* hook = hook_.load(std::memory_order_acquire)) {
    hook->OnTxnFinished(t->id(), t->epoch());
  }
  locks_.ReleaseAll(t->id());
  return Status::OK();
}

Status Database::Abort(const TxnPtr& t) {
  MORPH_RETURN_NOT_OK(txns_.BeginAbort(t));
  // The ABORT record's prev_lsn points at the last operation to undo.
  auto abort_rec = wal_.At(t->last_lsn());
  if (!abort_rec.ok()) return abort_rec.status();
  Lsn lsn = abort_rec->prev_lsn;
  while (lsn != kInvalidLsn) {
    auto rec = wal_.At(lsn);
    if (!rec.ok()) return rec.status();
    switch (rec->type) {
      case wal::LogRecordType::kInsert:
      case wal::LogRecordType::kDelete:
      case wal::LogRecordType::kUpdate:
        MORPH_RETURN_NOT_OK(UndoOne(t, *rec));
        lsn = rec->prev_lsn;
        break;
      case wal::LogRecordType::kClr:
        // Already-compensated suffix (only possible after restart recovery
        // resumed a partial rollback); skip to what is still to undo.
        lsn = rec->undo_next_lsn;
        break;
      case wal::LogRecordType::kBegin:
        lsn = kInvalidLsn;
        break;
      default:
        lsn = rec->prev_lsn;
        break;
    }
  }
  MORPH_RETURN_NOT_OK(txns_.EndAbort(t));
  MORPH_COUNTER_INC("engine.txn.aborts");
  if (TransformHook* hook = hook_.load(std::memory_order_acquire)) {
    hook->OnTxnFinished(t->id(), t->epoch());
  }
  locks_.ReleaseAll(t->id());
  return Status::OK();
}

Status Database::UndoOne(const TxnPtr& t, const wal::LogRecord& rec) {
  // If the table was dropped since the operation (e.g. an aborted
  // transformation's target), there is nothing to compensate physically,
  // but the CLR is still written so the undo chain stays well-formed.
  auto table = catalog_.GetById(rec.table_id);

  wal::LogRecord clr;
  clr.type = wal::LogRecordType::kClr;
  clr.txn_id = t->id();
  clr.prev_lsn = t->last_lsn();
  clr.table_id = rec.table_id;
  clr.key = rec.key;
  clr.undo_next_lsn = rec.prev_lsn;

  switch (rec.type) {
    case wal::LogRecordType::kInsert:
      clr.clr_action = wal::ClrAction::kUndoInsert;
      clr.before = rec.after;
      break;
    case wal::LogRecordType::kDelete:
      clr.clr_action = wal::ClrAction::kUndoDelete;
      clr.after = rec.before;
      break;
    case wal::LogRecordType::kUpdate:
      clr.clr_action = wal::ClrAction::kUndoUpdate;
      clr.updated_columns = rec.updated_columns;
      // Swapped images: the CLR re-applies the before-values.
      clr.before_values = rec.after_values;
      clr.after_values = rec.before_values;
      break;
    default:
      return Status::Internal("UndoOne on non-data log record");
  }

  const Lsn clr_lsn = wal_.Append(clr);
  t->set_last_lsn(clr_lsn);

  if (table == nullptr) return Status::OK();
  std::shared_lock latch(table->latch_for(rec.key));
  switch (rec.type) {
    case wal::LogRecordType::kInsert:
      return table->Delete(rec.key);
    case wal::LogRecordType::kDelete: {
      storage::Record record;
      record.row = rec.before;
      record.lsn = clr_lsn;
      return table->Insert(std::move(record));
    }
    case wal::LogRecordType::kUpdate:
      return table->Mutate(rec.key, [&](storage::Record* r) {
        for (size_t i = 0; i < rec.updated_columns.size(); ++i) {
          r->row[rec.updated_columns[i]] = rec.before_values[i];
        }
        r->lsn = clr_lsn;
        return true;
      });
    default:
      return Status::Internal("unreachable");
  }
}

Status Database::OpGate(const TxnPtr& t, storage::Table* table, const Row& key,
                        txn::LockMode mode, txn::Access access) {
  if (t->state() != txn::TxnState::kActive) {
    return Status::InvalidArgument("operation on non-active transaction " +
                                   std::to_string(t->id()));
  }
  // Hook gate runs *before* lock acquisition and before the table latch:
  // a gated/blocked operation must pin no engine resources (see
  // TransformHook docs).
  if (TransformHook* hook = hook_.load(std::memory_order_acquire)) {
    MORPH_RETURN_NOT_OK(hook->OnOp(t->id(), t->epoch(), table->id(), access,
                                   key, /*may_block=*/true));
  }
  if (options_.multigranularity_locking) {
    const txn::LockMode intent = mode == txn::LockMode::kShared
                                     ? txn::LockMode::kIntentionShared
                                     : txn::LockMode::kIntentionExclusive;
    MORPH_RETURN_NOT_OK(
        locks_.Acquire(t->id(), txn::LockManager::TableLockId(table->id()),
                       intent));
  }
  txn::RecordId rid{table->id(), key};
  return locks_.Acquire(t->id(), rid, mode);
}

Status Database::LockTable(const TxnPtr& t, storage::Table* table,
                           txn::LockMode mode) {
  if (!options_.multigranularity_locking) {
    return Status::NotSupported(
        "table locks require DatabaseOptions::multigranularity_locking");
  }
  if (t->state() != txn::TxnState::kActive) {
    return Status::InvalidArgument("operation on non-active transaction");
  }
  return locks_.Acquire(t->id(), txn::LockManager::TableLockId(table->id()),
                        mode);
}

Status Database::Recheck(const TxnPtr& t, storage::Table* table, const Row& key,
                         txn::Access access) {
  if (TransformHook* hook = hook_.load(std::memory_order_acquire)) {
    return hook->OnOp(t->id(), t->epoch(), table->id(), access, key,
                      /*may_block=*/false);
  }
  return Status::OK();
}

Status Database::Insert(const TxnPtr& t, storage::Table* table, Row row) {
  MORPH_RETURN_NOT_OK(table->schema().ValidateRow(row));
  const Row key = table->schema().KeyOf(row);
  MORPH_RETURN_NOT_OK(
      OpGate(t, table, key, txn::LockMode::kExclusive, txn::Access::kWrite));
  std::shared_lock latch(table->latch_for(key));
  MORPH_RETURN_NOT_OK(Recheck(t, table, key, txn::Access::kWrite));
  if (table->Contains(key)) {
    return Status::AlreadyExists("duplicate key " + key.ToString() + " in " +
                                 table->name());
  }
  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kInsert;
  rec.txn_id = t->id();
  rec.prev_lsn = t->last_lsn();
  rec.table_id = table->id();
  rec.key = key;
  rec.after = row;
  const Lsn lsn = wal_.Append(std::move(rec));
  t->set_last_lsn(lsn);
  // Crash window: the insert is logged but not yet applied — restart
  // recovery must redo it (or undo it if the transaction never committed).
  MORPH_FAILPOINT("engine.insert.after_log");

  storage::Record record;
  record.row = std::move(row);
  record.lsn = lsn;
  return table->Insert(std::move(record));
}

Status Database::Delete(const TxnPtr& t, storage::Table* table, const Row& key) {
  MORPH_RETURN_NOT_OK(
      OpGate(t, table, key, txn::LockMode::kExclusive, txn::Access::kWrite));
  std::shared_lock latch(table->latch_for(key));
  MORPH_RETURN_NOT_OK(Recheck(t, table, key, txn::Access::kWrite));
  auto existing = table->Get(key);
  if (!existing.ok()) return existing.status();

  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kDelete;
  rec.txn_id = t->id();
  rec.prev_lsn = t->last_lsn();
  rec.table_id = table->id();
  rec.key = key;
  rec.before = existing->row;
  const Lsn lsn = wal_.Append(std::move(rec));
  t->set_last_lsn(lsn);
  MORPH_FAILPOINT("engine.delete.after_log");

  return table->Delete(key);
}

Status Database::Update(const TxnPtr& t, storage::Table* table, const Row& key,
                        const std::vector<ColumnUpdate>& updates) {
  MORPH_RETURN_NOT_OK(
      OpGate(t, table, key, txn::LockMode::kExclusive, txn::Access::kWrite));
  std::shared_lock latch(table->latch_for(key));
  MORPH_RETURN_NOT_OK(Recheck(t, table, key, txn::Access::kWrite));
  auto existing = table->Get(key);
  if (!existing.ok()) return existing.status();

  Row new_row = existing->row;
  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kUpdate;
  rec.txn_id = t->id();
  rec.prev_lsn = t->last_lsn();
  rec.table_id = table->id();
  rec.key = key;
  for (const ColumnUpdate& u : updates) {
    if (u.column >= new_row.size()) {
      return Status::InvalidArgument("column index out of range");
    }
    rec.updated_columns.push_back(static_cast<uint32_t>(u.column));
    rec.before_values.push_back(new_row[u.column]);
    rec.after_values.push_back(u.value);
    new_row[u.column] = u.value;
  }
  MORPH_RETURN_NOT_OK(table->schema().ValidateRow(new_row));
  if (table->schema().KeyOf(new_row) != key) {
    return Status::InvalidArgument(
        "Update may not change the primary key; use Delete+Insert");
  }
  const Lsn lsn = wal_.Append(std::move(rec));
  t->set_last_lsn(lsn);
  MORPH_FAILPOINT("engine.update.after_log");

  storage::Record record;
  record.row = std::move(new_row);
  record.lsn = lsn;
  return table->Update(key, std::move(record));
}

Result<Row> Database::Read(const TxnPtr& t, storage::Table* table,
                           const Row& key) {
  MORPH_RETURN_NOT_OK(
      OpGate(t, table, key, txn::LockMode::kShared, txn::Access::kRead));
  std::shared_lock latch(table->latch_for(key));
  MORPH_RETURN_NOT_OK(Recheck(t, table, key, txn::Access::kRead));
  auto record = table->Get(key);
  if (!record.ok()) return record.status();
  return record->row;
}

Status Database::BulkLoad(storage::Table* table, const std::vector<Row>& rows) {
  for (const Row& row : rows) {
    MORPH_RETURN_NOT_OK(table->schema().ValidateRow(row));
    wal::LogRecord rec;
    rec.type = wal::LogRecordType::kInsert;
    rec.txn_id = kInvalidTxnId;
    rec.table_id = table->id();
    rec.key = table->schema().KeyOf(row);
    rec.after = row;
    const Lsn lsn = wal_.Append(std::move(rec));

    storage::Record record;
    record.row = row;
    record.lsn = lsn;
    MORPH_RETURN_NOT_OK(table->Insert(std::move(record)));
  }
  return Status::OK();
}

Status Database::SetTransformHook(TransformHook* hook) {
  TransformHook* expected = nullptr;
  if (!hook_.compare_exchange_strong(expected, hook,
                                     std::memory_order_acq_rel)) {
    return Status::AlreadyExists("another transformation is already active");
  }
  return Status::OK();
}

void Database::ClearTransformHook() {
  hook_.store(nullptr, std::memory_order_release);
}

}  // namespace morph::engine
