#include "engine/blocking_transform.h"

#include <shared_mutex>

#include "common/clock.h"
#include "common/relops.h"

namespace morph::engine {

namespace {

/// Whole-table pause: exclusively latch every tablet of `table`, in index
/// order, appending the guards to `latches` (tables themselves must be
/// latched in id order by the caller).
void LatchAllTablets(storage::Table* table,
                     std::vector<std::unique_lock<std::shared_mutex>>* latches) {
  for (size_t t = 0; t < table->num_tablets(); ++t) {
    latches->emplace_back(table->tablet_latch(t));
  }
}

std::vector<Row> SnapshotRows(storage::Table* table) {
  std::vector<Row> rows;
  rows.reserve(table->size());
  table->ForEach([&](const storage::Record& rec) { rows.push_back(rec.row); });
  return rows;
}

Status WriteAll(Database* db, storage::Table* out, const std::vector<Row>& rows,
                const std::vector<int64_t>* counters,
                const std::vector<bool>* consistent) {
  for (size_t i = 0; i < rows.size(); ++i) {
    wal::LogRecord rec;
    rec.type = wal::LogRecordType::kInsert;
    rec.txn_id = kInvalidTxnId;
    rec.table_id = out->id();
    rec.key = out->schema().KeyOf(rows[i]);
    rec.after = rows[i];
    const Lsn lsn = db->wal()->Append(std::move(rec));

    storage::Record record;
    record.row = rows[i];
    record.lsn = lsn;
    if (counters != nullptr) record.counter = (*counters)[i];
    if (consistent != nullptr) record.consistent = (*consistent)[i];
    MORPH_RETURN_NOT_OK(out->Insert(std::move(record)));
  }
  return Status::OK();
}

}  // namespace

Result<BlockingTransform::Outcome> BlockingTransform::FullOuterJoin(
    Database* db, storage::Table* r, size_t r_join_col, storage::Table* s,
    size_t s_join_col, storage::Table* t_out) {
  if (t_out->size() != 0) {
    return Status::InvalidArgument("target table must be empty");
  }
  Outcome outcome;
  const auto start = Clock::Now();
  {
    // Latch order: by table id, to avoid deadlock with any other
    // double-latcher.
    storage::Table* first = r->id() < s->id() ? r : s;
    storage::Table* second = r->id() < s->id() ? s : r;
    std::vector<std::unique_lock<std::shared_mutex>> latches;
    latches.reserve(first->num_tablets() + second->num_tablets());
    LatchAllTablets(first, &latches);
    LatchAllTablets(second, &latches);

    const std::vector<Row> r_rows = SnapshotRows(r);
    const std::vector<Row> s_rows = SnapshotRows(s);
    const std::vector<Row> joined =
        morph::FullOuterJoin(r_rows, r_join_col, s_rows, s_join_col,
                             r->schema().num_columns(), s->schema().num_columns());
    MORPH_RETURN_NOT_OK(WriteAll(db, t_out, joined, nullptr, nullptr));
    outcome.rows_written = joined.size();
  }
  outcome.blocked_micros = Clock::MicrosSince(start);
  return outcome;
}

Result<BlockingTransform::Outcome> BlockingTransform::Split(
    Database* db, storage::Table* t, const std::vector<size_t>& r_cols,
    const std::vector<size_t>& s_cols, storage::Table* r_out,
    storage::Table* s_out) {
  if (r_out->size() != 0 || s_out->size() != 0) {
    return Status::InvalidArgument("target tables must be empty");
  }
  // The split attribute is the primary key of s_out; find its positions
  // within the s projection.
  std::vector<size_t> s_key_within;
  for (size_t key_idx : s_out->schema().key_indices()) s_key_within.push_back(key_idx);

  Outcome outcome;
  const auto start = Clock::Now();
  {
    std::vector<std::unique_lock<std::shared_mutex>> latches;
    latches.reserve(t->num_tablets());
    LatchAllTablets(t, &latches);
    const std::vector<Row> t_rows = SnapshotRows(t);
    SplitResult split = morph::Split(t_rows, r_cols, s_cols, s_key_within);
    MORPH_RETURN_NOT_OK(WriteAll(db, r_out, split.r_rows, nullptr, nullptr));
    MORPH_RETURN_NOT_OK(
        WriteAll(db, s_out, split.s_rows, &split.s_counters, &split.s_consistent));
    outcome.rows_written = split.r_rows.size() + split.s_rows.size();
  }
  outcome.blocked_micros = Clock::MicrosSince(start);
  return outcome;
}

}  // namespace morph::engine
