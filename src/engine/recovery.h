#pragma once

#include <unordered_map>

#include "common/result.h"
#include "storage/catalog.h"
#include "wal/wal.h"

namespace morph::engine {

/// \brief ARIES-lite restart recovery.
///
/// The paper assumes an ARIES-style recovery substrate ("redo and undo log
/// records are produced, and undo operations produce Compensating Log
/// Records", §1) — this module provides it so the engine is a credible host
/// for the transformation framework.
///
/// The engine is main-memory, so restart means: recreate the table schemas
/// (caller's job — DDL is not logged, exactly like the paper's prototype),
/// then Restart() rebuilds table contents from the log:
///
///  1. **Analysis + redo** in one forward pass: every data record (INSERT /
///     DELETE / UPDATE / CLR) is re-applied in LSN order to the initially
///     empty tables; the active-transaction table is reconstructed on the
///     side (BEGIN adds, COMMIT / TXN_END removes).
///  2. **Undo**: every loser transaction's chain is walked backwards from
///     its last LSN; data operations are compensated, each writing a CLR to
///     the log; already-compensated suffixes are skipped via undo_next_lsn.
///     Each loser ends with a TXN_END record.
///
/// Re-running Restart on the extended log is idempotent: the second pass
/// finds no losers.
class Recovery {
 public:
  struct Stats {
    size_t records_scanned = 0;
    size_t redone = 0;
    size_t losers = 0;
    size_t undone = 0;  ///< CLRs written during the undo pass
  };

  /// \brief Rebuilds the contents of the tables in `catalog` from `wal`.
  ///
  /// Tables must exist (matching the TableIds in the log — recreate them in
  /// the original creation order) and be empty. Records whose table id is
  /// unknown are skipped (dropped tables).
  static Result<Stats> Restart(wal::Wal* wal, storage::Catalog* catalog);

  /// \brief Restart against a segmented on-disk WAL: opens the chain rooted
  /// at `options.dir` into `wal` (a fresh, in-memory Wal — the replayed
  /// records become its contents), runs Restart, then makes the CLRs and
  /// TXN_END records written by the undo pass durable before returning, so
  /// a crash right after recovery cannot resurrect half-undone losers.
  static Result<Stats> RestartDurable(wal::Wal* wal,
                                      const wal::WalOptions& options,
                                      storage::Catalog* catalog);

  /// \brief The undo pass, shared with checkpoint-based restart
  /// (engine::Checkpointer): rolls back each loser from its undo-chain
  /// head, writing CLRs and a final TXN_END. Returns the number of
  /// operations compensated.
  static Result<size_t> UndoLosers(
      wal::Wal* wal, storage::Catalog* catalog,
      const std::unordered_map<TxnId, Lsn>& losers);
};

}  // namespace morph::engine
