#include "engine/checkpoint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <unordered_map>

#include "common/codec.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "engine/recovery.h"
#include "storage/snapshot.h"

namespace morph::engine {

namespace {

constexpr uint32_t kMetaMagic = 0x4d434b50;  // "MCKP"

std::string MetaPath(const std::string& dir) { return dir + "/checkpoint.meta"; }
std::string SnapshotPath(const std::string& dir, const std::string& table) {
  return dir + "/" + table + ".snapshot";
}

/// LSN-gated redo of one data record against a snapshot-restored table:
/// a record whose stored LSN is at or above the log record's already
/// reflects the operation (the snapshot scan ran concurrently with the
/// writers) and is left alone.
Status GatedRedo(const wal::LogRecord& rec, storage::Table* table,
                 size_t* redone, size_t* skipped) {
  auto apply_insert = [&](const Row& row, Lsn lsn) -> Status {
    storage::Record record;
    record.row = row;
    record.lsn = lsn;
    Status st = table->Insert(std::move(record));
    if (st.IsAlreadyExists()) {
      bool changed = false;
      st = table->Mutate(rec.key, [&](storage::Record* cur) {
        if (cur->lsn >= lsn) return false;
        cur->row = row;
        cur->lsn = lsn;
        changed = true;
        return true;
      });
      (changed ? *redone : *skipped)++;
      return st;
    }
    (*redone)++;
    return st;
  };
  auto apply_delete = [&](Lsn lsn) -> Status {
    auto cur = table->Get(rec.key);
    if (!cur.ok() || cur->lsn >= lsn) {
      (*skipped)++;
      return Status::OK();
    }
    (*redone)++;
    const Status st = table->Delete(rec.key);
    return st.IsNotFound() ? Status::OK() : st;
  };
  auto apply_update = [&](const std::vector<uint32_t>& cols,
                          const std::vector<Value>& values, Lsn lsn) -> Status {
    bool changed = false;
    const Status st = table->Mutate(rec.key, [&](storage::Record* cur) {
      if (cur->lsn >= lsn) return false;
      for (size_t i = 0; i < cols.size(); ++i) cur->row[cols[i]] = values[i];
      cur->lsn = lsn;
      changed = true;
      return true;
    });
    (changed ? *redone : *skipped)++;
    return st.IsNotFound() ? Status::OK() : st;
  };

  switch (rec.type) {
    case wal::LogRecordType::kInsert:
      return apply_insert(rec.after, rec.lsn);
    case wal::LogRecordType::kDelete:
      return apply_delete(rec.lsn);
    case wal::LogRecordType::kUpdate:
      return apply_update(rec.updated_columns, rec.after_values, rec.lsn);
    case wal::LogRecordType::kClr:
      switch (rec.clr_action) {
        case wal::ClrAction::kUndoInsert:
          return apply_delete(rec.lsn);
        case wal::ClrAction::kUndoDelete:
          return apply_insert(rec.after, rec.lsn);
        case wal::ClrAction::kUndoUpdate:
          return apply_update(rec.updated_columns, rec.after_values, rec.lsn);
      }
      return Status::Corruption("bad CLR action");
    default:
      return Status::Internal("GatedRedo on non-data record");
  }
}

}  // namespace

Result<CheckpointMeta> Checkpointer::Write(Database* db,
                                           const std::string& dir) {
  MORPH_FAILPOINT("engine.checkpoint.write");
  MORPH_COUNTER_INC("engine.checkpoint.writes");
  CheckpointMeta meta;
  // Order matters: the WAL guard and the active-transaction table are
  // captured before the (fuzzy) scans, so anything the scans miss is at an
  // LSN above guard_lsn and gets replayed at restore.
  meta.guard_lsn = db->wal()->LastLsn();
  const txn::ActiveSnapshot snap = db->txns()->Snapshot();
  meta.active_txns = snap.txns;
  meta.active_last_lsns = snap.last_lsns;
  meta.min_active_lsn = snap.min_first_lsn;

  std::vector<std::string> names = db->catalog()->TableNames();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    auto table = db->catalog()->GetByName(name);
    if (table == nullptr) continue;
    MORPH_RETURN_NOT_OK(
        storage::TableSnapshot::Save(*table, SnapshotPath(dir, name)));
    meta.tables.push_back(name);
  }

  std::string buf;
  codec::PutU32(&buf, kMetaMagic);
  codec::PutU64(&buf, meta.guard_lsn);
  codec::PutU64(&buf, meta.min_active_lsn);
  codec::PutU32(&buf, static_cast<uint32_t>(meta.active_txns.size()));
  for (size_t i = 0; i < meta.active_txns.size(); ++i) {
    codec::PutU64(&buf, meta.active_txns[i]);
    codec::PutU64(&buf, meta.active_last_lsns[i]);
  }
  codec::PutU32(&buf, static_cast<uint32_t>(meta.tables.size()));
  for (const std::string& name : meta.tables) codec::PutString(&buf, name);

  // Temp + rename: a crash mid-write must leave the previous checkpoint's
  // meta (and thus the previous checkpoint) usable — the same atomicity
  // discipline as Wal::SaveToFile.
  const std::string meta_tmp = MetaPath(dir) + ".tmp";
  {
    std::ofstream out(meta_tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write " + meta_tmp);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    out.flush();
    if (!out) return Status::IOError("short write to " + meta_tmp);
  }
  std::error_code rename_ec;
  std::filesystem::rename(meta_tmp, MetaPath(dir), rename_ec);
  if (rename_ec) {
    return Status::IOError("rename " + meta_tmp + ": " + rename_ec.message());
  }
  // a = guard LSN, b = tables snapshotted.
  MORPH_TRACE("engine.checkpoint.write", static_cast<int64_t>(meta.guard_lsn),
              static_cast<int64_t>(meta.tables.size()));
  return meta;
}

Result<CheckpointMeta> Checkpointer::ReadMeta(const std::string& dir) {
  std::ifstream in(MetaPath(dir), std::ios::binary);
  if (!in) return Status::IOError("cannot read " + MetaPath(dir));
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  codec::Reader r{buf, 0, false};
  if (r.GetU32() != kMetaMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  CheckpointMeta meta;
  meta.guard_lsn = r.GetU64();
  meta.min_active_lsn = r.GetU64();
  const uint32_t n_txns = r.GetU32();
  for (uint32_t i = 0; i < n_txns; ++i) {
    meta.active_txns.push_back(r.GetU64());
    meta.active_last_lsns.push_back(r.GetU64());
  }
  const uint32_t n_tables = r.GetU32();
  for (uint32_t i = 0; i < n_tables; ++i) meta.tables.push_back(r.GetString());
  if (r.failed) return Status::Corruption("truncated checkpoint meta");
  return meta;
}

Result<Checkpointer::Stats> Checkpointer::Restore(const std::string& dir,
                                                  wal::Wal* wal,
                                                  storage::Catalog* catalog) {
  MORPH_FAILPOINT("engine.checkpoint.restore");
  MORPH_COUNTER_INC("engine.checkpoint.restores");
  MORPH_ASSIGN_OR_RETURN(CheckpointMeta meta, ReadMeta(dir));
  Stats stats;

  for (const std::string& name : meta.tables) {
    auto table = catalog->GetByName(name);
    if (table == nullptr) {
      return Status::InvalidArgument("table " + name +
                                     " not recreated before Restore");
    }
    MORPH_RETURN_NOT_OK(
        storage::TableSnapshot::Load(table.get(), SnapshotPath(dir, name)));
    stats.snapshot_records += table->size();
  }

  // Analysis + gated redo over the post-checkpoint suffix. The ATT is
  // seeded from the checkpoint (losers may have written nothing since).
  std::unordered_map<TxnId, Lsn> att;
  for (size_t i = 0; i < meta.active_txns.size(); ++i) {
    att[meta.active_txns[i]] = meta.active_last_lsns[i];
  }
  Status redo_status;
  // Checked scan: if the WAL has been truncated past this checkpoint's redo
  // start (e.g. restoring from a stale checkpoint directory after a newer
  // checkpoint truncated further), redo records are gone and silently
  // skipping them would restore torn state — fail loudly instead.
  auto scanned = wal->ScanChecked(
      meta.redo_start_lsn(), wal->LastLsn(), [&](const wal::LogRecord& rec) {
              stats.records_scanned++;
              switch (rec.type) {
                case wal::LogRecordType::kBegin:
                  att[rec.txn_id] = rec.lsn;
                  break;
                case wal::LogRecordType::kCommit:
                case wal::LogRecordType::kTxnEnd:
                  att.erase(rec.txn_id);
                  break;
                case wal::LogRecordType::kAbort:
                  att[rec.txn_id] = rec.lsn;
                  break;
                case wal::LogRecordType::kInsert:
                case wal::LogRecordType::kDelete:
                case wal::LogRecordType::kUpdate:
                case wal::LogRecordType::kClr: {
                  if (rec.txn_id != kInvalidTxnId) att[rec.txn_id] = rec.lsn;
                  auto table = catalog->GetById(rec.table_id);
                  if (table == nullptr) break;  // dropped table
                  const Status st = GatedRedo(rec, table.get(), &stats.redone,
                                              &stats.skipped_by_lsn);
                  if (redo_status.ok() && !st.ok() && !st.IsNotFound() &&
                      !st.IsAlreadyExists()) {
                    redo_status = st;
                  }
                  break;
                }
                default:
                  break;
              }
            });
  if (!scanned.ok()) return scanned.status();
  MORPH_RETURN_NOT_OK(redo_status);

  stats.losers = att.size();
  MORPH_ASSIGN_OR_RETURN(stats.undone, Recovery::UndoLosers(wal, catalog, att));
  return stats;
}

}  // namespace morph::engine
