#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"

namespace morph::engine {

/// \brief Fuzzy checkpoints: bound both restart-recovery work and WAL
/// retention without ever blocking user transactions.
///
/// A checkpoint captures, in order:
///
///  1. `guard_lsn`   — the WAL position *before* any table is scanned;
///  2. the active-transaction table and its oldest BEGIN LSN (losers at a
///     crash may need undo records from before the checkpoint);
///  3. a fuzzy snapshot of every table (no locks; writers keep running).
///
/// Restart from a checkpoint loads the snapshots, then performs **LSN-gated
/// redo** of the log from `redo_start_lsn()`: a snapshot record already
/// reflecting a logged operation (the scan ran concurrently with writers)
/// has a LSN at or above the record's and is skipped — the same
/// state-identifier discipline the paper's fuzzy copy uses (§2.2). Undo of
/// losers then proceeds exactly as in plain Restart.
///
/// The WAL may be truncated up to `truncate_floor()` once the checkpoint is
/// durable: everything older is covered by the snapshots and is not needed
/// by any loser's undo chain.
struct CheckpointMeta {
  Lsn guard_lsn = kInvalidLsn;
  Lsn min_active_lsn = kInvalidLsn;  ///< oldest BEGIN among active txns
  std::vector<TxnId> active_txns;
  /// Undo-chain heads at checkpoint time, parallel to active_txns.
  std::vector<Lsn> active_last_lsns;
  std::vector<std::string> tables;  ///< snapshot order = catalog names

  /// First LSN the restart's redo pass must read.
  Lsn redo_start_lsn() const {
    if (min_active_lsn != kInvalidLsn && min_active_lsn <= guard_lsn) {
      return min_active_lsn;
    }
    return guard_lsn + 1;
  }
  /// Records below this can be dropped from the WAL.
  Lsn truncate_floor() const { return redo_start_lsn(); }
};

class Checkpointer {
 public:
  /// \brief Writes a fuzzy checkpoint of every table in `db` into `dir`
  /// (created by the caller): one snapshot file per table plus
  /// `checkpoint.meta`. Safe to run concurrently with user transactions and
  /// with a running transformation (transformed tables are snapshotted like
  /// any other; an in-flight transformation is simply not part of the
  /// checkpoint contract and restarts as aborted, like plain recovery).
  static Result<CheckpointMeta> Write(Database* db, const std::string& dir);

  /// \brief Reads `dir`/checkpoint.meta.
  static Result<CheckpointMeta> ReadMeta(const std::string& dir);

  /// \brief Restores table contents from the checkpoint in `dir` and the
  /// log suffix in `wal`: load snapshots → LSN-gated redo from
  /// redo_start_lsn → undo losers (with CLRs). Tables must exist (schemas
  /// recreated by the caller, names matching the checkpointed ones) and be
  /// empty.
  struct Stats {
    size_t snapshot_records = 0;
    size_t records_scanned = 0;
    size_t redone = 0;
    size_t skipped_by_lsn = 0;
    size_t losers = 0;
    size_t undone = 0;
  };
  static Result<Stats> Restore(const std::string& dir, wal::Wal* wal,
                               storage::Catalog* catalog);
};

}  // namespace morph::engine
