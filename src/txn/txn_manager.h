#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "txn/transaction.h"
#include "wal/wal.h"

namespace morph::txn {

/// \brief Snapshot of the active-transaction table, written into fuzzy
/// marks (paper §3.2: the fuzzy mark "must include the transaction
/// identifiers of all transactions that are active on the source tables").
struct ActiveSnapshot {
  std::vector<TxnId> txns;
  /// Per-transaction undo-chain heads, parallel to `txns` (checkpoints
  /// store them so a loser with no post-checkpoint records can still be
  /// rolled back from the right place).
  std::vector<Lsn> last_lsns;
  /// Oldest BEGIN LSN among the active transactions; kInvalidLsn if none.
  /// Log propagation's first iteration starts here (paper §3.3).
  Lsn min_first_lsn = kInvalidLsn;
};

/// \brief Allocates transaction ids, tracks the active-transaction table and
/// writes the transaction-lifecycle log records.
///
/// Data operations (insert/update/delete + undo with CLRs) are logged by the
/// engine layer, which owns the storage the records live in; this class owns
/// only identity and lifecycle.
class TransactionManager {
 public:
  explicit TransactionManager(wal::Wal* wal) : wal_(wal) {}

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// \brief Starts a transaction: assigns the next id, logs BEGIN, registers
  /// it in the active table. `epoch` is stamped before registration so epoch
  /// snapshots never observe a half-initialized transaction.
  std::shared_ptr<Transaction> Begin(TxnEpoch epoch = 0);

  /// \brief Logs COMMIT and removes the transaction from the active table.
  /// The caller is responsible for releasing its locks afterwards (strict
  /// 2PL: locks are held past the commit record).
  Status Commit(const std::shared_ptr<Transaction>& t);

  /// \brief Logs ABORT and flips the state to kAborting. The engine then
  /// performs the undo pass (writing CLRs) and finishes with EndAbort.
  Status BeginAbort(const std::shared_ptr<Transaction>& t);

  /// \brief Logs TXN_END after the undo pass and removes the transaction
  /// from the active table.
  Status EndAbort(const std::shared_ptr<Transaction>& t);

  /// \brief Lookup by id; nullptr if unknown (already forgotten).
  std::shared_ptr<Transaction> Find(TxnId id) const;

  /// \brief Snapshot of currently active transactions for a fuzzy mark.
  ActiveSnapshot Snapshot() const;

  /// \brief Active transactions whose epoch is strictly less than `epoch`
  /// (used at switch-over to find the pre-switch stragglers).
  std::vector<std::shared_ptr<Transaction>> ActiveBefore(TxnEpoch epoch) const;

  size_t num_active() const;

 private:
  wal::Wal* wal_;
  mutable std::mutex mu_;
  TxnId next_id_ = 1;
  std::unordered_map<TxnId, std::shared_ptr<Transaction>> active_;
};

}  // namespace morph::txn
