#include "txn/transform_locks.h"

#include <algorithm>
#include <chrono>

namespace morph::txn {

bool TransformLockTable::Compatible(LockOrigin o1, Access a1, LockOrigin o2,
                                    Access a2) {
  const bool s1 = o1 != LockOrigin::kTarget;
  const bool s2 = o2 != LockOrigin::kTarget;
  // Source-origin locks never conflict with each other: the real conflict
  // (if any) is enforced by the ordinary lock manager on the source tables,
  // and operations on R and S touch disjoint attributes of T (Figure 2).
  if (s1 && s2) return true;
  // Target writes conflict with everything.
  if (a1 == Access::kWrite && o1 == LockOrigin::kTarget) return false;
  if (a2 == Access::kWrite && o2 == LockOrigin::kTarget) return false;
  // Here exactly one side is target-origin and it is a read (or both target
  // reads). A target read is compatible with reads, conflicts with writes.
  return a1 == Access::kRead && a2 == Access::kRead;
}

bool TransformLockTable::ConflictsLocked(const RecordId& rid, TxnId self,
                                         LockOrigin origin, Access access) const {
  auto it = table_.find(rid);
  if (it == table_.end()) return false;
  for (const Entry& e : it->second) {
    if (e.txn == self) continue;
    if (!Compatible(origin, access, e.origin, e.access)) return true;
  }
  return false;
}

void TransformLockTable::AddTransferred(TxnId txn, const RecordId& rid,
                                        LockOrigin origin, Access access) {
  std::unique_lock lock(mu_);
  auto& entries = table_[rid];
  for (const Entry& e : entries) {
    if (e.txn == txn && e.origin == origin && e.access == access) return;
  }
  entries.push_back({txn, origin, access});
  held_[txn].push_back(rid);
}

Status TransformLockTable::AcquireTarget(TxnId txn, const RecordId& rid,
                                         Access access, bool wait) {
  std::unique_lock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(wait_timeout_micros_);
  while (ConflictsLocked(rid, txn, LockOrigin::kTarget, access)) {
    if (!wait) {
      return Status::Busy("transform lock conflict on " + rid.ToString());
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::Busy("transform lock wait timeout on " + rid.ToString());
    }
  }
  auto& entries = table_[rid];
  for (const Entry& e : entries) {
    if (e.txn == txn && e.origin == LockOrigin::kTarget && e.access == access) {
      return Status::OK();
    }
  }
  entries.push_back({txn, LockOrigin::kTarget, access});
  held_[txn].push_back(rid);
  return Status::OK();
}

bool TransformLockTable::WouldBlockTarget(const RecordId& rid, Access access,
                                          TxnId self) const {
  std::unique_lock lock(mu_);
  return ConflictsLocked(rid, self, LockOrigin::kTarget, access);
}

bool TransformLockTable::WouldBlockSource(const RecordId& rid, Access access,
                                          TxnId self) const {
  std::unique_lock lock(mu_);
  return ConflictsLocked(rid, self, LockOrigin::kSource0, access);
}

void TransformLockTable::ReleaseTxn(TxnId txn) {
  std::unique_lock lock(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (const RecordId& rid : it->second) {
    auto qit = table_.find(rid);
    if (qit == table_.end()) continue;
    auto& entries = qit->second;
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const Entry& e) { return e.txn == txn; }),
                  entries.end());
    if (entries.empty()) table_.erase(qit);
  }
  held_.erase(it);
  cv_.notify_all();
}

void TransformLockTable::ReleaseTxnTargetLocks(TxnId txn) {
  std::unique_lock lock(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  bool kept_any = false;
  auto& rids = it->second;
  size_t out = 0;
  for (size_t i = 0; i < rids.size(); ++i) {
    const RecordId& rid = rids[i];
    auto qit = table_.find(rid);
    if (qit == table_.end()) continue;
    auto& entries = qit->second;
    bool kept_here = false;
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const Entry& e) {
                                   if (e.txn != txn) return false;
                                   if (e.origin == LockOrigin::kTarget) {
                                     return true;
                                   }
                                   kept_here = true;
                                   return false;
                                 }),
                  entries.end());
    if (entries.empty()) table_.erase(qit);
    if (kept_here) {
      kept_any = true;
      rids[out++] = rids[i];
    }
  }
  if (kept_any) {
    rids.resize(out);
  } else {
    held_.erase(it);
  }
  cv_.notify_all();
}

size_t TransformLockTable::num_locks() const {
  std::unique_lock lock(mu_);
  size_t n = 0;
  for (const auto& [rid, entries] : table_) n += entries.size();
  return n;
}

void TransformLockTable::Clear() {
  std::unique_lock lock(mu_);
  table_.clear();
  held_.clear();
  cv_.notify_all();
}

}  // namespace morph::txn
