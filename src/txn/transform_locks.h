#pragma once

#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "txn/lock_manager.h"

namespace morph::txn {

/// \brief Where a lock held on a transformed-table record came from.
///
/// During a transformation, the log propagator mirrors source-table locks
/// onto the transformed table ("locks are maintained on records in the
/// transformed tables during the entire transformation", paper §3.3). Since
/// a full-outer-join merges records of two source tables R and S into one
/// record of T, two *non-conflicting* source operations can map to the same
/// T record; the paper's Figure 2 therefore relaxes the compatibility matrix
/// so that source-origin locks never conflict with each other, while they do
/// conflict with locks taken by new transactions running against T.
enum class LockOrigin : uint8_t {
  kSource0 = 0,  ///< R in a FOJ; T in a split
  kSource1 = 1,  ///< S in a FOJ; unused in a split
  kTarget = 2,   ///< a new transaction operating on the transformed table
};

enum class Access : uint8_t { kRead = 0, kWrite = 1 };

/// \brief Lock table for transformed-table records implementing the paper's
/// Figure 2 compatibility matrix.
///
/// Two populations use it:
///  - the log propagator *transfers* source locks with AddTransferred —
///    never blocking, because conflicts among source locks cannot happen by
///    the matrix, and conflicts with target locks are only possible after
///    switch-over under non-blocking commit, where the *target* side is the
///    one made to wait;
///  - new transactions admitted to the transformed table after switch-over
///    acquire target locks with AcquireTarget, which waits (bounded) until
///    conflicting transferred locks are released. Transferred locks are
///    released when the propagator processes the owner's commit/abort log
///    record (ReleaseTxn).
///
/// Thread safety: every method takes `mu_` for its whole critical section,
/// so the table is safe under the parallel propagation pipeline, where
/// AddTransferred is called concurrently from N apply-worker threads (and,
/// under non-blocking commit, from client threads running OnOp) while the
/// reader thread calls ReleaseTxn and post-switch client threads call
/// AcquireTarget/ReleaseTxn. AddTransferred's duplicate collapse and
/// held_-list append are a single atomic step under `mu_`, so two workers
/// mirroring locks for the same transaction cannot tear the entry lists;
/// ReleaseTxn wakes AcquireTarget waiters via `cv_` under the same mutex.
class TransformLockTable {
 public:
  explicit TransformLockTable(int64_t wait_timeout_micros = 5'000'000)
      : wait_timeout_micros_(wait_timeout_micros) {}

  TransformLockTable(const TransformLockTable&) = delete;
  TransformLockTable& operator=(const TransformLockTable&) = delete;

  /// \brief Figure 2, generalized: source-origin locks are mutually
  /// compatible; target reads are compatible with source reads and target
  /// reads; target writes are compatible with nothing.
  static bool Compatible(LockOrigin o1, Access a1, LockOrigin o2, Access a2);

  /// \brief Records a lock transferred from a source-table operation.
  /// Never blocks; duplicate (txn, rid, origin, access) entries collapse.
  void AddTransferred(TxnId txn, const RecordId& rid, LockOrigin origin,
                      Access access);

  /// \brief Acquires a target-origin lock for a post-switch-over
  /// transaction. If `wait` is false and the lock conflicts, returns
  /// Status::Busy immediately.
  Status AcquireTarget(TxnId txn, const RecordId& rid, Access access, bool wait);

  /// \brief True if a target-side access to `rid` would conflict with locks
  /// held by transactions other than `self`.
  bool WouldBlockTarget(const RecordId& rid, Access access, TxnId self) const;

  /// \brief For non-blocking *commit* synchronization: true if a source-side
  /// access would conflict with a target-origin lock held by someone else
  /// ("locks must be transferred both from T to R and S and vice versa",
  /// paper §4.3).
  bool WouldBlockSource(const RecordId& rid, Access access, TxnId self) const;

  /// \brief Releases every lock (transferred and target) held by `txn`.
  /// Called by the propagator when it processes the owner's commit/abort
  /// record, and by the engine when a target-side transaction finishes.
  void ReleaseTxn(TxnId txn);

  /// \brief Releases only `txn`'s target-origin locks, leaving transferred
  /// ones in place. Used while a staggered transformation is partially
  /// migrated: a finishing transaction may hold target locks (migrated
  /// tablets, released here) *and* mirrored source locks (unmigrated
  /// tablets, which must survive until the propagator has applied all its
  /// ops and processes its completion record).
  void ReleaseTxnTargetLocks(TxnId txn);

  /// \brief Number of distinct (txn, record) lock entries held.
  size_t num_locks() const;

  /// \brief Drops all state (end of transformation).
  void Clear();

 private:
  struct Entry {
    TxnId txn;
    LockOrigin origin;
    Access access;
  };

  bool ConflictsLocked(const RecordId& rid, TxnId self, LockOrigin origin,
                       Access access) const;

  int64_t wait_timeout_micros_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<RecordId, std::vector<Entry>, RecordIdHasher> table_;
  std::unordered_map<TxnId, std::vector<RecordId>> held_;
};

}  // namespace morph::txn
