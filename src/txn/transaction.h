#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace morph::txn {

/// \brief Lifecycle states of a transaction.
enum class TxnState : uint8_t {
  kActive = 0,
  kAborting = 1,   ///< ABORT logged; undo (CLR) pass in progress
  kCommitted = 2,
  kAborted = 3,
};

std::string_view TxnStateToString(TxnState state);

/// \brief Epoch counter type stamped on transactions at Begin.
///
/// The engine keeps a global epoch that a schema transformation advances at
/// its control points (drain start for blocking-commit, switch-over for the
/// non-blocking strategies). Comparing a transaction's epoch against those
/// recorded values tells the transformation hook whether the transaction is
/// an "old" transaction (started against the source tables) or a "new" one
/// (to be routed to the transformed tables). Under non-blocking *abort*,
/// old transactions are forced to abort at switch-over; under non-blocking
/// *commit* they continue and their locks keep being mirrored into the
/// transformed tables until they finish (paper §3.4).
using TxnEpoch = uint64_t;

/// \brief Per-transaction bookkeeping.
///
/// A Transaction is driven by a single client thread; the fields the
/// transformation framework reads concurrently (state, last_lsn) are atomic.
class Transaction {
 public:
  Transaction(TxnId id, Lsn begin_lsn)
      : id_(id), first_lsn_(begin_lsn), last_lsn_(begin_lsn) {}

  TxnId id() const { return id_; }

  TxnState state() const { return state_.load(std::memory_order_acquire); }
  void set_state(TxnState s) { state_.store(s, std::memory_order_release); }

  /// LSN of this transaction's BEGIN record: the oldest log record the
  /// fuzzy-mark "oldest active" computation can attribute to it.
  Lsn first_lsn() const { return first_lsn_; }

  /// Head of the undo chain (most recent log record of this transaction).
  Lsn last_lsn() const { return last_lsn_.load(std::memory_order_acquire); }
  void set_last_lsn(Lsn lsn) { last_lsn_.store(lsn, std::memory_order_release); }

  TxnEpoch epoch() const { return epoch_.load(std::memory_order_acquire); }
  void set_epoch(TxnEpoch e) { epoch_.store(e, std::memory_order_release); }

  bool finished() const {
    const TxnState s = state();
    return s == TxnState::kCommitted || s == TxnState::kAborted;
  }

 private:
  const TxnId id_;
  const Lsn first_lsn_;
  std::atomic<TxnState> state_{TxnState::kActive};
  std::atomic<Lsn> last_lsn_;
  std::atomic<TxnEpoch> epoch_{0};
};

}  // namespace morph::txn
