#include "txn/txn_manager.h"

namespace morph::txn {

std::string_view TxnStateToString(TxnState state) {
  switch (state) {
    case TxnState::kActive:
      return "ACTIVE";
    case TxnState::kAborting:
      return "ABORTING";
    case TxnState::kCommitted:
      return "COMMITTED";
    case TxnState::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

std::shared_ptr<Transaction> TransactionManager::Begin(TxnEpoch epoch) {
  std::unique_lock lock(mu_);
  const TxnId id = next_id_++;
  lock.unlock();

  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kBegin;
  rec.txn_id = id;
  const Lsn lsn = wal_->Append(std::move(rec));

  auto t = std::make_shared<Transaction>(id, lsn);
  t->set_epoch(epoch);
  lock.lock();
  active_[id] = t;
  return t;
}

Status TransactionManager::Commit(const std::shared_ptr<Transaction>& t) {
  if (t->state() != TxnState::kActive) {
    return Status::InvalidArgument("commit of non-active transaction " +
                                   std::to_string(t->id()));
  }
  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kCommit;
  rec.txn_id = t->id();
  rec.prev_lsn = t->last_lsn();
  t->set_last_lsn(wal_->Append(std::move(rec)));
  t->set_state(TxnState::kCommitted);
  std::unique_lock lock(mu_);
  active_.erase(t->id());
  return Status::OK();
}

Status TransactionManager::BeginAbort(const std::shared_ptr<Transaction>& t) {
  if (t->state() != TxnState::kActive) {
    return Status::InvalidArgument("abort of non-active transaction " +
                                   std::to_string(t->id()));
  }
  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kAbort;
  rec.txn_id = t->id();
  rec.prev_lsn = t->last_lsn();
  t->set_last_lsn(wal_->Append(std::move(rec)));
  t->set_state(TxnState::kAborting);
  return Status::OK();
}

Status TransactionManager::EndAbort(const std::shared_ptr<Transaction>& t) {
  if (t->state() != TxnState::kAborting) {
    return Status::InvalidArgument("EndAbort of transaction not aborting: " +
                                   std::to_string(t->id()));
  }
  wal::LogRecord rec;
  rec.type = wal::LogRecordType::kTxnEnd;
  rec.txn_id = t->id();
  rec.prev_lsn = t->last_lsn();
  t->set_last_lsn(wal_->Append(std::move(rec)));
  t->set_state(TxnState::kAborted);
  std::unique_lock lock(mu_);
  active_.erase(t->id());
  return Status::OK();
}

std::shared_ptr<Transaction> TransactionManager::Find(TxnId id) const {
  std::unique_lock lock(mu_);
  auto it = active_.find(id);
  return it == active_.end() ? nullptr : it->second;
}

ActiveSnapshot TransactionManager::Snapshot() const {
  std::unique_lock lock(mu_);
  ActiveSnapshot snap;
  snap.txns.reserve(active_.size());
  for (const auto& [id, t] : active_) {
    snap.txns.push_back(id);
    snap.last_lsns.push_back(t->last_lsn());
    if (snap.min_first_lsn == kInvalidLsn || t->first_lsn() < snap.min_first_lsn) {
      snap.min_first_lsn = t->first_lsn();
    }
  }
  return snap;
}

std::vector<std::shared_ptr<Transaction>> TransactionManager::ActiveBefore(
    TxnEpoch epoch) const {
  std::unique_lock lock(mu_);
  std::vector<std::shared_ptr<Transaction>> out;
  for (const auto& [id, t] : active_) {
    if (t->epoch() < epoch) out.push_back(t);
  }
  return out;
}

size_t TransactionManager::num_active() const {
  std::unique_lock lock(mu_);
  return active_.size();
}

}  // namespace morph::txn
