#include "txn/lock_manager.h"

#include <algorithm>
#include <chrono>

#include "common/metrics.h"

namespace morph::txn {

bool LockModesCompatible(LockMode a, LockMode b) {
  // The classic multigranularity matrix (IS/IX/S/X; no SIX).
  switch (a) {
    case LockMode::kIntentionShared:
      return b != LockMode::kExclusive;
    case LockMode::kIntentionExclusive:
      return b == LockMode::kIntentionShared ||
             b == LockMode::kIntentionExclusive;
    case LockMode::kShared:
      return b == LockMode::kIntentionShared || b == LockMode::kShared;
    case LockMode::kExclusive:
      return false;
  }
  return false;
}

namespace {

/// True if holding `held` already satisfies a request for `req`.
bool Covers(LockMode held, LockMode req) {
  if (held == req) return true;
  if (held == LockMode::kExclusive) return true;
  if (req == LockMode::kIntentionShared) {
    return held == LockMode::kShared || held == LockMode::kIntentionExclusive;
  }
  return false;
}

/// Least upper bound used for upgrades (no SIX mode: S+IX escalates to X).
LockMode Lub(LockMode a, LockMode b) {
  if (a == b) return a;
  if (a == LockMode::kExclusive || b == LockMode::kExclusive) {
    return LockMode::kExclusive;
  }
  const bool has_s = a == LockMode::kShared || b == LockMode::kShared;
  const bool has_ix =
      a == LockMode::kIntentionExclusive || b == LockMode::kIntentionExclusive;
  if (has_s && has_ix) return LockMode::kExclusive;
  if (has_s) return LockMode::kShared;
  if (has_ix) return LockMode::kIntentionExclusive;
  return LockMode::kIntentionShared;
}

}  // namespace

bool LockManager::Conflicts(const LockQueue& q, TxnId txn, LockMode mode) {
  for (const Holder& h : q.holders) {
    if (h.txn == txn) continue;
    if (!LockModesCompatible(mode, h.mode)) return true;
  }
  return false;
}

bool LockManager::ShouldDie(const LockQueue& q, TxnId txn, LockMode mode) {
  for (const Holder& h : q.holders) {
    if (h.txn == txn) continue;
    if (!LockModesCompatible(mode, h.mode) && h.txn < txn) {
      return true;  // holder is older: requester dies
    }
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, const RecordId& rid, LockMode mode) {
  MORPH_COUNTER_INC("txn.lock.acquires");
  std::unique_lock lock(mu_);
  LockQueue& q = table_[rid];

  // Re-entrant fast path + immediate upgrade attempt.
  for (Holder& h : q.holders) {
    if (h.txn != txn) continue;
    if (Covers(h.mode, mode)) return Status::OK();
    const LockMode target = Lub(h.mode, mode);
    if (!Conflicts(q, txn, target)) {
      h.mode = target;
      return Status::OK();
    }
    if (ShouldDie(q, txn, target)) {
      MORPH_COUNTER_INC("txn.lock.deadlocks");
      return Status::Deadlock("wait-die: upgrade on " + rid.ToString());
    }
    // Fall through to the wait loop; the held entry keeps its current mode
    // until the upgrade is granted.
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(wait_timeout_micros_);
  bool first_attempt = true;
  std::chrono::steady_clock::time_point wait_start;
  // Records the total blocked time into the wait histogram on every exit
  // path that follows at least one cv wait.
  const auto record_wait = [&] {
    MORPH_HISTOGRAM_NANOS(
        "txn.lock.wait_nanos",
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count());
  };
  while (true) {
    LockQueue& queue = table_[rid];
    // Re-derive the grant target (an upgrade if this txn already holds).
    LockMode target = mode;
    Holder* mine = nullptr;
    for (Holder& h : queue.holders) {
      if (h.txn == txn) {
        mine = &h;
        target = Lub(h.mode, mode);
        break;
      }
    }
    if (!Conflicts(queue, txn, target)) {
      if (mine != nullptr) {
        mine->mode = target;
      } else {
        queue.holders.push_back({txn, target});
        held_[txn].push_back(rid);
      }
      if (!first_attempt) record_wait();
      return Status::OK();
    }
    if (ShouldDie(queue, txn, target)) {
      MORPH_COUNTER_INC("txn.lock.deadlocks");
      if (!first_attempt) record_wait();
      return Status::Deadlock("wait-die: lock on " + rid.ToString());
    }
    if (!first_attempt && std::chrono::steady_clock::now() >= deadline) {
      MORPH_COUNTER_INC("txn.lock.timeouts");
      record_wait();
      return Status::Busy("lock wait timeout on " + rid.ToString());
    }
    if (first_attempt) {
      MORPH_COUNTER_INC("txn.lock.waits");
      wait_start = std::chrono::steady_clock::now();
      first_attempt = false;
    }
    queue.waiters++;
    cv_.wait_until(lock, deadline);
    // `table_` may have rehashed while unlocked; re-lookup on next loop.
    auto it = table_.find(rid);
    if (it != table_.end()) it->second.waiters--;
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  std::unique_lock lock(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (const RecordId& rid : it->second) {
    auto qit = table_.find(rid);
    if (qit == table_.end()) continue;
    LockQueue& q = qit->second;
    q.holders.erase(std::remove_if(q.holders.begin(), q.holders.end(),
                                   [&](const Holder& h) { return h.txn == txn; }),
                    q.holders.end());
    if (q.holders.empty() && q.waiters == 0) table_.erase(qit);
  }
  held_.erase(it);
  cv_.notify_all();
}

bool LockManager::Holds(TxnId txn, const RecordId& rid, LockMode mode) const {
  std::unique_lock lock(mu_);
  auto it = table_.find(rid);
  if (it == table_.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn != txn) continue;
    return Covers(h.mode, mode);
  }
  return false;
}

std::vector<RecordId> LockManager::LocksOf(TxnId txn) const {
  std::unique_lock lock(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return {};
  return it->second;
}

size_t LockManager::num_locks() const {
  std::unique_lock lock(mu_);
  size_t n = 0;
  for (const auto& [rid, q] : table_) n += q.holders.size();
  return n;
}

}  // namespace morph::txn
