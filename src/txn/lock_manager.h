#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "common/types.h"

namespace morph::txn {

/// \brief Identity of a lockable record: table plus primary-key value.
struct RecordId {
  TableId table = kInvalidTableId;
  Row key;

  bool operator==(const RecordId& other) const {
    return table == other.table && key == other.key;
  }

  std::string ToString() const {
    return "t" + std::to_string(table) + key.ToString();
  }
};

struct RecordIdHasher {
  size_t operator()(const RecordId& rid) const {
    return rid.key.Hash() * 1000003ULL ^ rid.table;
  }
};

/// \brief Lock modes. Records use kShared/kExclusive — the engine's writes
/// always take exclusive locks (the paper's propagation rules assume "all
/// write operations on the source tables use exclusive locks; delta updates
/// are not allowed", §4.2). Tables additionally use the multigranularity
/// intention modes (the extension the paper's §4.3 notes "can easily" be
/// made): kIntentionShared / kIntentionExclusive announce record-level
/// activity, so a table-granularity kShared/kExclusive can coexist with or
/// exclude it by the classic matrix:
///
///           IS   IX   S    X
///   IS      ✓    ✓    ✓    ✗
///   IX      ✓    ✓    ✗    ✗
///   S       ✓    ✗    ✓    ✗
///   X       ✗    ✗    ✗    ✗
enum class LockMode : uint8_t {
  kIntentionShared = 0,
  kIntentionExclusive = 1,
  kShared = 2,
  kExclusive = 3,
};

/// \brief True if two holders in the given modes may coexist.
bool LockModesCompatible(LockMode a, LockMode b);

/// \brief Strict two-phase record lock manager with wait-die deadlock
/// avoidance.
///
/// Transactions acquire record locks as they touch records and release
/// everything at commit/abort via ReleaseAll. Wait-die uses the transaction
/// id as the timestamp (lower id = older): an older requester waits for a
/// conflicting holder; a younger requester "dies" and gets
/// Status::Deadlock, which the engine surfaces as a transaction abort the
/// client may retry. A configurable wait timeout (default 5 s) is a
/// belt-and-braces backstop; hitting it returns Status::Busy.
class LockManager {
 public:
  explicit LockManager(int64_t wait_timeout_micros = 5'000'000)
      : wait_timeout_micros_(wait_timeout_micros) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// \brief Acquires (or upgrades to) `mode` on `rid` for `txn`.
  ///
  /// Re-entrant: holding a mode that covers the request satisfies it
  /// (kExclusive ⊇ all, kShared ⊇ kIntentionShared, kIntentionExclusive ⊇
  /// kIntentionShared); an upgrade is granted when compatible with the
  /// other holders, and otherwise follows wait-die.
  ///
  /// Table-granularity locks use a RecordId with an empty key row; the
  /// engine acquires intention locks there before record locks when
  /// multigranularity locking is enabled (DatabaseOptions).
  Status Acquire(TxnId txn, const RecordId& rid, LockMode mode);

  /// \brief The table-granularity lock id for `table`.
  static RecordId TableLockId(TableId table) { return RecordId{table, Row()}; }

  /// \brief Releases every lock held by `txn` and wakes waiters.
  void ReleaseAll(TxnId txn);

  /// \brief Test/introspection helper: does `txn` hold `rid` in at least
  /// `mode`?
  bool Holds(TxnId txn, const RecordId& rid, LockMode mode) const;

  /// \brief Snapshot of the record ids currently locked by `txn`.
  std::vector<RecordId> LocksOf(TxnId txn) const;

  /// \brief Total number of held (granted) locks, across all transactions.
  size_t num_locks() const;

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
  };

  struct LockQueue {
    std::vector<Holder> holders;
    // Waiters block on the manager-wide condition variable; a queue version
    // counter avoids missed wakeups.
    uint64_t version = 0;
    int waiters = 0;
  };

  /// True if a holder in `q` other than `txn` conflicts with `mode`.
  static bool Conflicts(const LockQueue& q, TxnId txn, LockMode mode);
  /// True if any conflicting holder is *older* (smaller id) than `txn`.
  static bool ShouldDie(const LockQueue& q, TxnId txn, LockMode mode);

  int64_t wait_timeout_micros_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<RecordId, LockQueue, RecordIdHasher> table_;
  std::unordered_map<TxnId, std::vector<RecordId>> held_;
};

}  // namespace morph::txn
