// morph_shell — an interactive SQL shell over the morph engine, including
// the online-transformation statements.
//
//   $ ./morph_shell            # interactive REPL (reads stdin)
//   $ ./morph_shell --demo     # scripted demo of an online split
//
// Example session:
//   morph> CREATE TABLE customers (id INT NOT NULL, name TEXT, zip INT,
//          city TEXT, PRIMARY KEY (id));
//   morph> INSERT INTO customers VALUES (1, 'Peter', 7050, 'Trondheim');
//   morph> TRANSFORM SPLIT customers INTO customers_slim (id, name, zip),
//          locations (zip, city) ON (zip) WITH PRIORITY 0.5;
//   morph> SHOW TRANSFORM;
//   morph> SELECT * FROM locations WHERE zip = 7050;

#include <cstdio>
#include <iostream>
#include <string>

#include "engine/database.h"
#include "sql/executor.h"

using namespace morph;

namespace {

int RunDemo(sql::Session* session) {
  const char* script = R"sql(
CREATE TABLE customers (id INT NOT NULL, name TEXT, zip INT, city TEXT,
                        PRIMARY KEY (id));
INSERT INTO customers VALUES
  (1, 'Peter', 7050, 'Trondheim'),
  (2, 'Mark', 5020, 'Bergen'),
  (3, 'Gary', 50, 'Oslo'),
  (134, 'Jen', 7050, 'Trondheim');
SELECT * FROM customers;
TRANSFORM SPLIT customers INTO customers_slim (id, name, zip),
  locations (zip, city) ON (zip) WITH PRIORITY 0.8;
)sql";
  auto result = session->ExecuteScript(script);
  if (!result.ok()) {
    std::fprintf(stderr, "demo failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->ToString().c_str());

  // Keep updating while the transformation runs, then let it finish.
  for (int i = 0; i < 50; ++i) {
    auto r = session->Execute("UPDATE customers SET name = 'Peter J' WHERE id = 1");
    if (!r.ok()) break;
  }
  auto finish = session->Execute("TRANSFORM FINISH");
  if (finish.ok()) std::printf("%s\n", finish->ToString().c_str());

  for (const char* q :
       {"SHOW TABLES", "SELECT * FROM customers_slim WHERE zip = 7050",
        "SELECT * FROM locations"}) {
    auto r = session->Execute(q);
    std::printf("morph> %s\n%s\n", q,
                r.ok() ? r->ToString().c_str() : r.status().ToString().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  engine::Database db;
  sql::Session session(&db);

  if (argc > 1 && std::string(argv[1]) == "--demo") {
    return RunDemo(&session);
  }

  std::printf("morph shell — type SQL, end statements with ';'\n");
  std::printf("transformations: TRANSFORM JOIN/SPLIT/MERGE/HSPLIT ... ;\n");
  std::string buffer;
  std::string line;
  std::printf("morph> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    buffer += line + "\n";
    if (line.find(';') != std::string::npos) {
      auto result = session.ExecuteScript(buffer);
      buffer.clear();
      if (result.ok()) {
        std::printf("%s", result->ToString().c_str());
        if (result->columns.empty() && result->message.empty()) {
          std::printf("OK");
        }
        std::printf("\n");
      } else {
        std::printf("error: %s\n", result.status().ToString().c_str());
      }
    }
    std::printf("morph> ");
    std::fflush(stdout);
  }
  return 0;
}
