// Quickstart: perform an online, non-blocking full outer join transformation
// while user transactions keep updating the source tables.
//
// The scenario follows the paper's Figure 1: two source tables R and S are
// joined into one table T by a background transformation. User transactions
// are never blocked for more than the sub-millisecond final synchronization
// latch.

#include <cstdio>
#include <future>
#include <thread>

#include "common/random.h"
#include "engine/database.h"
#include "transform/coordinator.h"
#include "transform/foj.h"

using namespace morph;

int main() {
  engine::Database db;

  // --- 1. Create and load the source tables --------------------------------
  auto r_schema = *Schema::Make({{"id", ValueType::kInt64, false},
                                 {"dept", ValueType::kInt64, true},
                                 {"name", ValueType::kString, true}},
                                {"id"});
  auto s_schema = *Schema::Make({{"dept", ValueType::kInt64, false},
                                 {"dept_name", ValueType::kString, true}},
                                {"dept"});
  auto employees = *db.CreateTable("employees", std::move(r_schema));
  auto departments = *db.CreateTable("departments", std::move(s_schema));

  std::vector<Row> emp_rows;
  for (int i = 0; i < 1000; ++i) {
    emp_rows.push_back(Row({i, static_cast<int64_t>(i % 10),
                            "employee-" + std::to_string(i)}));
  }
  std::vector<Row> dept_rows;
  for (int d = 0; d < 10; ++d) {
    dept_rows.push_back(Row({d, "dept-" + std::to_string(d)}));
  }
  if (!db.BulkLoad(employees.get(), emp_rows).ok() ||
      !db.BulkLoad(departments.get(), dept_rows).ok()) {
    std::fprintf(stderr, "bulk load failed\n");
    return 1;
  }
  std::printf("loaded %zu employees, %zu departments\n", employees->size(),
              departments->size());

  // --- 2. Describe the transformation --------------------------------------
  transform::FojSpec spec;
  spec.r_table = "employees";
  spec.s_table = "departments";
  spec.r_join_column = "dept";
  spec.s_join_column = "dept";
  spec.target_table = "employees_denormalized";

  auto rules = transform::FojRules::Make(&db, spec);
  if (!rules.ok()) {
    std::fprintf(stderr, "spec error: %s\n", rules.status().ToString().c_str());
    return 1;
  }
  auto shared_rules =
      std::shared_ptr<transform::FojRules>(std::move(rules).ValueOrDie());

  transform::TransformConfig config;
  config.strategy = transform::SyncStrategy::kNonBlockingAbort;
  config.priority = 0.5;  // background duty cycle

  transform::TransformCoordinator coordinator(&db, shared_rules, config);

  // --- 3. Run it while user transactions keep writing ----------------------
  // Hold synchronization open while the workload runs, so the transformation
  // demonstrably overlaps live traffic; release it to let the DBA-chosen
  // cut-over happen.
  coordinator.SetSyncHold(true);
  auto stats_future =
      std::async(std::launch::async, [&] { return coordinator.Run(); });

  size_t committed = 0;
  size_t aborted = 0;
  Random rng(42);
  for (int i = 0; i < 2000; ++i) {
    // ~5k user transactions/second — a paced OLTP workload, not a tight loop.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    auto txn = db.Begin();
    const int64_t id = static_cast<int64_t>(rng.Uniform(1000));
    Status st = db.Update(txn, employees.get(), Row({id}),
                          {{2, Value("renamed-" + std::to_string(id))}});
    if (st.ok() && db.Commit(txn).ok()) {
      committed++;
    } else {
      if (!txn->finished()) (void)db.Abort(txn);
      aborted++;
    }
  }
  coordinator.SetSyncHold(false);

  auto stats = stats_future.get();
  if (!stats.ok() || !stats->completed) {
    std::fprintf(stderr, "transformation failed: %s\n",
                 stats.ok() ? stats->abort_reason.c_str()
                            : stats.status().ToString().c_str());
    return 1;
  }

  // --- 4. Inspect the result ------------------------------------------------
  auto target = db.catalog()->GetByName("employees_denormalized");
  std::printf("transformation complete:\n");
  std::printf("  target rows          : %zu\n", target->size());
  std::printf("  log records replayed : %zu\n", stats->log_records_processed);
  std::printf("  sync latch pause     : %lld us (the only user-visible stall)\n",
              static_cast<long long>(stats->sync_latch_micros));
  std::printf("  user txns during run : %zu committed, %zu aborted\n", committed,
              aborted);

  // T is now an ordinary table.
  auto txn = db.Begin();
  auto row = db.Read(txn, target.get(), Row({7, 7}));
  if (row.ok()) {
    std::printf("  sample row           : %s\n", row->ToString().c_str());
  }
  (void)db.Commit(txn);
  return 0;
}
