// Telecom denormalization — the paper's motivating scenario.
//
// An operational telecom database (think HLR / subscriber registry) cannot
// go offline: call-processing transactions read and update subscriber state
// around the clock. The operator wants to denormalize `subscribers` and
// `rate_plans` into one table so call setup needs a single lookup.
//
// A blocking `insert into select` would stall call processing for the whole
// copy ("tens of minutes" at real scale, §1). This example runs both the
// blocking baseline and the online transformation on the same data and
// reports what user transactions experienced in each case.

#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "engine/blocking_transform.h"
#include "engine/database.h"
#include "transform/coordinator.h"
#include "transform/foj.h"

using namespace morph;

namespace {

constexpr int kSubscribers = 20000;
constexpr int kPlans = 50;

struct WorkloadReport {
  size_t committed = 0;
  size_t failed = 0;
  int64_t max_stall_micros = 0;
};

/// Simulated call-processing traffic: each transaction updates one
/// subscriber's usage counter. Runs until `stop`.
WorkloadReport CallTraffic(engine::Database* db, storage::Table* subscribers,
                           std::atomic<bool>* stop, uint64_t seed,
                           int64_t max_duration_ms = 3000) {
  WorkloadReport report;
  Random rng(seed);
  const auto deadline =
      Clock::Now() + std::chrono::milliseconds(max_duration_ms);
  while (!stop->load(std::memory_order_acquire) && Clock::Now() < deadline) {
    // Paced call arrivals (~10k calls/s) rather than a tight loop.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    auto txn = db->Begin();
    if (txn->epoch() > 0) {
      // Switch-over: new transactions should use the transformed table.
      (void)db->Abort(txn);
      break;
    }
    const int64_t msisdn = static_cast<int64_t>(rng.Uniform(kSubscribers));
    const auto start = Clock::Now();
    Status st = db->Update(txn, subscribers, Row({msisdn}),
                           {{3, Value(static_cast<int64_t>(rng.Uniform(10000)))}});
    const int64_t stall = Clock::MicrosSince(start);
    report.max_stall_micros = std::max(report.max_stall_micros, stall);
    if (st.ok() && db->Commit(txn).ok()) {
      report.committed++;
    } else {
      if (!txn->finished()) (void)db->Abort(txn);
      report.failed++;
    }
  }
  return report;
}

void LoadData(engine::Database* db, storage::Table* subscribers,
              storage::Table* plans) {
  std::vector<Row> sub_rows;
  sub_rows.reserve(kSubscribers);
  for (int i = 0; i < kSubscribers; ++i) {
    sub_rows.push_back(Row({i, static_cast<int64_t>(i % kPlans),
                            "sub-" + std::to_string(i), int64_t{0}}));
  }
  std::vector<Row> plan_rows;
  for (int p = 0; p < kPlans; ++p) {
    plan_rows.push_back(
        Row({p, "plan-" + std::to_string(p), static_cast<double>(p) * 0.01}));
  }
  if (!db->BulkLoad(subscribers, sub_rows).ok() ||
      !db->BulkLoad(plans, plan_rows).ok()) {
    std::abort();
  }
}

}  // namespace

int main() {
  auto sub_schema = *Schema::Make({{"msisdn", ValueType::kInt64, false},
                                   {"plan_id", ValueType::kInt64, true},
                                   {"name", ValueType::kString, true},
                                   {"usage", ValueType::kInt64, true}},
                                  {"msisdn"});
  auto plan_schema = *Schema::Make({{"plan_id", ValueType::kInt64, false},
                                    {"plan_name", ValueType::kString, true},
                                    {"rate", ValueType::kDouble, true}},
                                   {"plan_id"});

  // ---------------------------------------------------------------- blocking
  {
    engine::Database db;
    auto subscribers = *db.CreateTable("subscribers", sub_schema);
    auto plans = *db.CreateTable("rate_plans", plan_schema);
    LoadData(&db, subscribers.get(), plans.get());

    auto t_schema = *Schema::Make(
        {{"r_msisdn", ValueType::kInt64, true},
         {"r_plan_id", ValueType::kInt64, true},
         {"r_name", ValueType::kString, true},
         {"r_usage", ValueType::kInt64, true},
         {"s_plan_id", ValueType::kInt64, true},
         {"s_plan_name", ValueType::kString, true},
         {"s_rate", ValueType::kDouble, true}},
        std::vector<std::string>{"r_msisdn", "s_plan_id"});
    auto target = *db.CreateTable("subscribers_denorm", std::move(t_schema));

    std::atomic<bool> stop{false};
    auto traffic = std::async(std::launch::async, [&] {
      return CallTraffic(&db, subscribers.get(), &stop, 1);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto outcome = engine::BlockingTransform::FullOuterJoin(
        &db, subscribers.get(), 1, plans.get(), 1, target.get());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop.store(true);
    const WorkloadReport report = traffic.get();

    std::printf("=== blocking insert-into-select baseline ===\n");
    std::printf("  rows written        : %zu\n", outcome->rows_written);
    std::printf("  tables latched for  : %.1f ms  <-- every call stalls\n",
                outcome->blocked_micros / 1000.0);
    std::printf("  worst call stall    : %.1f ms\n",
                report.max_stall_micros / 1000.0);
    std::printf("  calls committed     : %zu\n\n", report.committed);
  }

  // ------------------------------------------------------------- non-blocking
  {
    engine::Database db;
    auto subscribers = *db.CreateTable("subscribers", sub_schema);
    auto plans = *db.CreateTable("rate_plans", plan_schema);
    LoadData(&db, subscribers.get(), plans.get());

    transform::FojSpec spec;
    spec.r_table = "subscribers";
    spec.s_table = "rate_plans";
    spec.r_join_column = "plan_id";
    spec.s_join_column = "plan_id";
    spec.target_table = "subscribers_denorm";
    auto rules = transform::FojRules::Make(&db, spec);
    auto shared_rules =
        std::shared_ptr<transform::FojRules>(std::move(rules).ValueOrDie());

    transform::TransformConfig config;
    config.strategy = transform::SyncStrategy::kNonBlockingAbort;
    config.priority = 0.5;  // background duty cycle
    // If traffic outpaces the propagator, raise its priority rather than
    // abort (§3.3 offers both choices).
    config.on_lag = transform::OnLag::kBoostPriority;
    transform::TransformCoordinator coordinator(&db, shared_rules, config);

    std::atomic<bool> stop{false};
    auto traffic = std::async(std::launch::async, [&] {
      return CallTraffic(&db, subscribers.get(), &stop, 2);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto stats = coordinator.Run();
    stop.store(true);
    const WorkloadReport report = traffic.get();

    if (!stats.ok() || !stats->completed) {
      std::fprintf(stderr, "transformation failed: %s\n",
                   stats.ok() ? stats->abort_reason.c_str()
                              : stats.status().ToString().c_str());
      return 1;
    }
    auto target = db.catalog()->GetByName("subscribers_denorm");
    std::printf("=== online non-blocking transformation ===\n");
    std::printf("  rows in target      : %zu\n", target->size());
    std::printf("  populate + propagate: %.1f ms (background, throttled)\n",
                (stats->populate_micros + stats->propagate_micros) / 1000.0);
    std::printf("  log records replayed: %zu\n", stats->log_records_processed);
    std::printf("  sync latch pause    : %.3f ms  <-- the only stall\n",
                stats->sync_latch_nanos / 1e6);
    std::printf("  txns doomed at sync : %zu (retryable)\n", stats->txns_doomed);
    std::printf("  worst call stall    : %.1f ms\n",
                report.max_stall_micros / 1000.0);
    std::printf("  calls committed     : %zu\n", report.committed);
  }
  return 0;
}
