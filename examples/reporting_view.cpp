// Continuous materialized-view maintenance (§7: "using the technique to
// create other types of derived tables like Materialized Views is an
// obvious example").
//
// A reporting view joining `accounts` and `branches` is created with a
// fuzzy scan and then kept converging by log propagation, with NO
// synchronization step: the sources stay primary, the view is readable the
// whole time, and stopping maintenance is a sub-millisecond latched
// catch-up that dooms nobody.

#include <cstdio>
#include <future>

#include "common/random.h"
#include "engine/database.h"
#include "transform/coordinator.h"
#include "transform/foj.h"

using namespace morph;

int main() {
  engine::Database db;
  auto accounts_schema = *Schema::Make({{"acct", ValueType::kInt64, false},
                                        {"branch", ValueType::kInt64, true},
                                        {"balance", ValueType::kInt64, true}},
                                       {"acct"});
  auto branches_schema = *Schema::Make({{"branch", ValueType::kInt64, false},
                                        {"city", ValueType::kString, true}},
                                       {"branch"});
  auto accounts = *db.CreateTable("accounts", std::move(accounts_schema));
  auto branches = *db.CreateTable("branches", std::move(branches_schema));
  {
    std::vector<Row> rows;
    for (int64_t i = 0; i < 10000; ++i) rows.push_back(Row({i, i % 25, i}));
    if (!db.BulkLoad(accounts.get(), rows).ok()) return 1;
    rows.clear();
    for (int64_t b = 0; b < 25; ++b) {
      rows.push_back(Row({b, "city-" + std::to_string(b)}));
    }
    if (!db.BulkLoad(branches.get(), rows).ok()) return 1;
  }

  transform::FojSpec spec;
  spec.r_table = "accounts";
  spec.s_table = "branches";
  spec.r_join_column = "branch";
  spec.s_join_column = "branch";
  spec.target_table = "account_report";
  auto rules = transform::FojRules::Make(&db, spec);
  auto shared =
      std::shared_ptr<transform::FojRules>(std::move(rules).ValueOrDie());

  transform::TransformConfig config;
  config.continuous = true;      // materialized view: maintain, don't switch
  config.maintain_locks = false; // no switch-over to protect
  config.priority = 0.3;
  transform::TransformCoordinator coordinator(&db, shared, config);
  auto stats_f =
      std::async(std::launch::async, [&] { return coordinator.Run(); });
  while (coordinator.phase() <
         transform::TransformCoordinator::Phase::kPropagating) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::printf("view 'account_report' is live and being maintained\n");

  // OLTP traffic against the sources, with periodic reads of the view.
  Random rng(123);
  size_t writes = 0;
  size_t view_reads = 0;
  auto view = db.catalog()->GetByName("account_report");
  for (int i = 0; i < 5000; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    auto txn = db.Begin();
    const int64_t acct = static_cast<int64_t>(rng.Uniform(10000));
    Status st = db.Update(txn, accounts.get(), Row({acct}),
                          {{2, Value(static_cast<int64_t>(rng.Uniform(100000)))}});
    if (st.ok() && db.Commit(txn).ok()) writes++;
    if (i % 500 == 0) {
      // The view is readable while maintained (slightly stale, converging).
      auto read_txn = db.Begin();
      auto row = db.Read(read_txn, view.get(), Row({acct, acct % 25}));
      if (row.ok()) view_reads++;
      (void)db.Commit(read_txn);
    }
  }

  coordinator.RequestFinish();
  auto stats = stats_f.get();
  if (!stats.ok() || !stats->completed) {
    std::fprintf(stderr, "view maintenance failed\n");
    return 1;
  }
  std::printf("maintenance finished:\n");
  std::printf("  source writes applied : %zu\n", writes);
  std::printf("  log records replayed  : %zu\n", stats->log_records_processed);
  std::printf("  view reads during run : %zu\n", view_reads);
  std::printf("  final catch-up pause  : %.3f ms\n",
              stats->sync_latch_nanos / 1e6);
  std::printf("  sources + view intact : accounts=%zu branches=%zu view=%zu\n",
              accounts->size(), branches->size(), view->size());
  return 0;
}
