// Online partition management with the horizontal operators (§7 "methods
// for other relational operators"):
//
//  1. A busy orders table is horizontally split into `orders_active`
//     (status < 2) and `orders_done` (status >= 2) while order-state
//     transitions keep committing — updates that flip the predicate migrate
//     rows between the targets during propagation.
//  2. Later, the two partitions are merged back into one table, also online.
//
// Both directions finish with the usual sub-millisecond synchronization
// latch.

#include <cstdio>
#include <future>

#include "common/random.h"
#include "engine/database.h"
#include "transform/coordinator.h"
#include "transform/hsplit.h"
#include "transform/merge.h"

using namespace morph;

namespace {

Schema OrderSchema() {
  return *Schema::Make({{"order_id", ValueType::kInt64, false},
                        {"status", ValueType::kInt64, true},  // 0..3
                        {"total", ValueType::kInt64, true}},
                       {"order_id"});
}

size_t DriveOrderTraffic(engine::Database* db, storage::Table* table,
                         int64_t key_range,
                         transform::TransformCoordinator* coord,
                         uint64_t seed) {
  Random rng(seed);
  size_t committed = 0;
  while (coord->phase() < transform::TransformCoordinator::Phase::kCompleted) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    auto txn = db->Begin();
    if (txn->epoch() > 0) {
      (void)db->Abort(txn);
      break;
    }
    const int64_t id = static_cast<int64_t>(rng.Uniform(key_range));
    // Order lifecycle: advance status (sometimes past the archive boundary).
    Status st = db->Update(txn, table, Row({id}),
                           {{1, Value(static_cast<int64_t>(rng.Uniform(4)))}});
    if (st.ok() && db->Commit(txn).ok()) {
      committed++;
    } else if (!txn->finished()) {
      (void)db->Abort(txn);
    }
  }
  return committed;
}

}  // namespace

int main() {
  engine::Database db;
  auto orders = *db.CreateTable("orders", OrderSchema());
  constexpr int64_t kOrders = 20000;
  {
    std::vector<Row> rows;
    rows.reserve(kOrders);
    for (int64_t i = 0; i < kOrders; ++i) {
      rows.push_back(Row({i, i % 4, i * 10}));
    }
    if (!db.BulkLoad(orders.get(), rows).ok()) return 1;
  }

  // --- phase 1: split into active / done -----------------------------------
  transform::HorizontalSplitSpec split_spec;
  split_spec.t_table = "orders";
  split_spec.predicate = {"status", transform::RoutePredicate::Comparator::kLt,
                          Value(2)};
  split_spec.r_name = "orders_active";
  split_spec.s_name = "orders_done";
  auto split_rules = transform::HorizontalSplitRules::Make(&db, split_spec);
  if (!split_rules.ok()) return 1;
  auto split_shared = std::shared_ptr<transform::HorizontalSplitRules>(
      std::move(split_rules).ValueOrDie());

  transform::TransformConfig config;
  config.priority = 0.4;
  config.on_lag = transform::OnLag::kBoostPriority;
  {
    transform::TransformCoordinator coordinator(&db, split_shared, config);
    auto stats_f =
        std::async(std::launch::async, [&] { return coordinator.Run(); });
    const size_t committed =
        DriveOrderTraffic(&db, orders.get(), kOrders, &coordinator, 1);
    auto stats = stats_f.get();
    if (!stats.ok() || !stats->completed) {
      std::fprintf(stderr, "split failed: %s\n",
                   stats.ok() ? stats->abort_reason.c_str() : "error");
      return 1;
    }
    std::printf("horizontal split complete:\n");
    std::printf("  orders_active rows : %zu\n", split_shared->r_table()->size());
    std::printf("  orders_done rows   : %zu\n", split_shared->s_table()->size());
    std::printf("  rows migrated      : %zu (status flips during propagation)\n",
                split_shared->counters().migrations);
    std::printf("  txns during split  : %zu committed\n", committed);
    std::printf("  sync latch pause   : %.3f ms\n\n",
                stats->sync_latch_nanos / 1e6);
  }

  // --- phase 2: merge back ---------------------------------------------------
  transform::MergeSpec merge_spec;
  merge_spec.r_table = "orders_active";
  merge_spec.s_table = "orders_done";
  merge_spec.target_table = "orders";  // the old name is free again
  auto merge_rules = transform::MergeRules::Make(&db, merge_spec);
  if (!merge_rules.ok()) {
    std::fprintf(stderr, "%s\n", merge_rules.status().ToString().c_str());
    return 1;
  }
  auto merge_shared =
      std::shared_ptr<transform::MergeRules>(std::move(merge_rules).ValueOrDie());
  {
    transform::TransformCoordinator coordinator(&db, merge_shared, config);
    auto active = merge_shared->Sources()[0];
    auto stats_f =
        std::async(std::launch::async, [&] { return coordinator.Run(); });
    const size_t committed =
        DriveOrderTraffic(&db, active.get(), kOrders, &coordinator, 2);
    auto stats = stats_f.get();
    if (!stats.ok() || !stats->completed) {
      std::fprintf(stderr, "merge failed: %s\n",
                   stats.ok() ? stats->abort_reason.c_str() : "error");
      return 1;
    }
    std::printf("merge complete:\n");
    std::printf("  orders rows        : %zu (all partitions reunited)\n",
                merge_shared->target()->size());
    std::printf("  txns during merge  : %zu committed\n", committed);
    std::printf("  sync latch pause   : %.3f ms\n",
                stats->sync_latch_nanos / 1e6);
  }
  return 0;
}
