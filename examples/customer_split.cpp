// Customer split — the paper's Example 1, end to end.
//
// A customer table keyed by customer id carries a functional dependency
// postal_code → city that the DBMS does not enforce, and the data contains
// the paper's famous typo: customers 1 and 134 share postal code 7050 but
// disagree on the city ("Trondheim" vs "Trnodheim").
//
// The table is split online into customers(id, name, postal_code) and
// locations(postal_code, city). Because consistency is NOT guaranteed
// (§5.3), every locations record carries a C/U flag and a background
// consistency checker (CC) verifies U-flagged records against the live
// source without locks. The transformation refuses to synchronize while any
// record is U; once the DBA repairs the typo through an ordinary update
// transaction, the CC blesses the record and the split completes.

#include <cstdio>
#include <future>
#include <thread>

#include "engine/database.h"
#include "transform/coordinator.h"
#include "transform/split.h"

using namespace morph;

int main() {
  engine::Database db;
  auto schema = *Schema::Make({{"id", ValueType::kInt64, false},
                               {"name", ValueType::kString, true},
                               {"postal_code", ValueType::kInt64, true},
                               {"city", ValueType::kString, true}},
                              {"id"});
  auto customers = *db.CreateTable("customers", std::move(schema));

  std::vector<Row> rows = {
      Row({1, "Peter", 7050, "Trondheim"}),
      Row({2, "Mark", 5020, "Bergen"}),
      Row({3, "Gary", 50, "Oslo"}),
      Row({134, "Jen", 7050, "Trnodheim"}),  // the Example 1 inconsistency
  };
  for (int i = 200; i < 400; ++i) {
    const int64_t zip = 1000 + i % 20;
    rows.push_back(Row({i, "cust-" + std::to_string(i), zip,
                        "city-" + std::to_string(zip)}));
  }
  if (!db.BulkLoad(customers.get(), rows).ok()) return 1;
  std::printf("loaded %zu customers (postal 7050 is inconsistent)\n",
              customers->size());

  transform::SplitSpec spec;
  spec.t_table = "customers";
  spec.r_columns = {"id", "name", "postal_code"};
  spec.s_columns = {"postal_code", "city"};
  spec.split_columns = {"postal_code"};
  spec.r_name = "customers_slim";
  spec.s_name = "locations";
  spec.assume_consistent = false;  // §5.3 mode: flags + consistency checker

  auto rules = transform::SplitRules::Make(&db, spec);
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 1;
  }
  auto shared_rules =
      std::shared_ptr<transform::SplitRules>(std::move(rules).ValueOrDie());

  transform::TransformConfig config;
  config.run_consistency_checker = true;
  config.strategy = transform::SyncStrategy::kNonBlockingAbort;
  transform::TransformCoordinator coordinator(&db, shared_rules, config);

  auto stats_future =
      std::async(std::launch::async, [&] { return coordinator.Run(); });

  // The transformation parks in propagation while 7050 stays U-flagged.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::printf("U-flagged locations  : %zu (CC cannot bless postal 7050)\n",
              shared_rules->CountInconsistent());
  std::printf("transformation phase : %s\n",
              coordinator.phase() ==
                      transform::TransformCoordinator::Phase::kPropagating
                  ? "propagating (sync blocked by U flag)"
                  : "unexpected");

  // The DBA fixes the typo with a perfectly ordinary transaction.
  auto txn = db.Begin();
  if (!db.Update(txn, customers.get(), Row({134}), {{3, Value("Trondheim")}})
           .ok() ||
      !db.Commit(txn).ok()) {
    std::fprintf(stderr, "repair failed\n");
    return 1;
  }
  std::printf("repaired customer 134: Trnodheim -> Trondheim\n");

  auto stats = stats_future.get();
  if (!stats.ok() || !stats->completed) {
    std::fprintf(stderr, "transformation failed: %s\n",
                 stats.ok() ? stats->abort_reason.c_str()
                            : stats.status().ToString().c_str());
    return 1;
  }

  auto locations = shared_rules->s_table();
  auto loc = locations->Get(Row({7050}));
  std::printf("split complete:\n");
  std::printf("  customers_slim rows : %zu\n", shared_rules->r_table()->size());
  std::printf("  locations rows      : %zu\n", locations->size());
  std::printf("  locations[7050]     : %s  counter=%lld  flag=%s\n",
              loc->row.ToString().c_str(), static_cast<long long>(loc->counter),
              loc->consistent ? "C" : "U");
  std::printf("  sync latch pause    : %.3f ms\n", stats->sync_latch_nanos / 1e6);
  return 0;
}
