// Many-to-many full outer join (paper §4.2 sketch).
//
// A logistics schema: orders(order_id, region, item) and
// couriers(courier_id, region, vehicle). The join attribute `region` is
// unique in NEITHER table, so an order in region x pairs with every courier
// covering x — a genuine many-to-many join. The transformed dispatch table
// is keyed by (order_id, courier_id): one candidate key from each source,
// exactly as §3.1 requires.

#include <cstdio>
#include <future>

#include "common/random.h"
#include "engine/database.h"
#include "transform/coordinator.h"
#include "transform/foj.h"

using namespace morph;

int main() {
  engine::Database db;
  auto orders_schema = *Schema::Make({{"order_id", ValueType::kInt64, false},
                                      {"region", ValueType::kInt64, true},
                                      {"item", ValueType::kString, true}},
                                     {"order_id"});
  auto couriers_schema = *Schema::Make({{"courier_id", ValueType::kInt64, false},
                                        {"region", ValueType::kInt64, true},
                                        {"vehicle", ValueType::kString, true}},
                                       {"courier_id"});
  auto orders = *db.CreateTable("orders", std::move(orders_schema));
  auto couriers = *db.CreateTable("couriers", std::move(couriers_schema));

  constexpr int kOrders = 600;
  constexpr int kRegions = 30;
  constexpr int kCouriers = 90;  // 3 per region
  std::vector<Row> order_rows;
  for (int i = 0; i < kOrders; ++i) {
    order_rows.push_back(Row({i, static_cast<int64_t>(i % kRegions),
                              "item-" + std::to_string(i % 40)}));
  }
  std::vector<Row> courier_rows;
  for (int c = 0; c < kCouriers; ++c) {
    courier_rows.push_back(Row({c, static_cast<int64_t>(c % kRegions),
                                c % 2 ? "van" : "bike"}));
  }
  if (!db.BulkLoad(orders.get(), order_rows).ok() ||
      !db.BulkLoad(couriers.get(), courier_rows).ok()) {
    return 1;
  }

  transform::FojSpec spec;
  spec.r_table = "orders";
  spec.s_table = "couriers";
  spec.r_join_column = "region";
  spec.s_join_column = "region";
  spec.target_table = "dispatch";
  spec.many_to_many = true;
  auto rules = transform::FojRules::Make(&db, spec);
  auto shared_rules =
      std::shared_ptr<transform::FojRules>(std::move(rules).ValueOrDie());

  transform::TransformConfig config;
  config.strategy = transform::SyncStrategy::kNonBlockingCommit;
  transform::TransformCoordinator coordinator(&db, shared_rules, config);

  // Concurrent traffic: orders move between regions, couriers change
  // vehicles — every one of those ops fans out over multiple dispatch rows.
  auto stats_future =
      std::async(std::launch::async, [&] { return coordinator.Run(); });
  Random rng(7);
  size_t committed = 0;
  while (coordinator.phase() <
         transform::TransformCoordinator::Phase::kCompleted) {
    // Paced workload: region moves fan out over several dispatch rows each,
    // so a tight loop would swamp the background propagator.
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    auto txn = db.Begin();
    if (txn->epoch() > 0) {
      (void)db.Abort(txn);
      break;
    }
    Status st;
    if (rng.Bernoulli(0.8)) {
      st = db.Update(txn, orders.get(),
                     Row({static_cast<int64_t>(rng.Uniform(kOrders))}),
                     {{1, Value(static_cast<int64_t>(rng.Uniform(kRegions)))}});
    } else {
      st = db.Update(txn, couriers.get(),
                     Row({static_cast<int64_t>(rng.Uniform(kCouriers))}),
                     {{2, Value(rng.Bernoulli(0.5) ? "van" : "bike")}});
    }
    if (st.ok() && db.Commit(txn).ok()) {
      committed++;
    } else if (!txn->finished()) {
      (void)db.Abort(txn);
    }
  }

  auto stats = stats_future.get();
  if (!stats.ok() || !stats->completed) {
    std::fprintf(stderr, "transformation failed\n");
    return 1;
  }
  auto dispatch = db.catalog()->GetByName("dispatch");
  std::printf("many-to-many dispatch table built online:\n");
  std::printf("  orders x couriers rows : %zu (%d orders x 3 couriers/region)\n",
              dispatch->size(), kOrders);
  std::printf("  concurrent txns        : %zu committed\n", committed);
  std::printf("  log records replayed   : %zu\n", stats->log_records_processed);
  std::printf("  sync latch pause       : %.3f ms\n",
              stats->sync_latch_nanos / 1e6);

  // Spot-check the fan-out: order 0 (region 0) pairs with couriers 0/12/24.
  size_t pairs = 0;
  dispatch->ForEach([&](const storage::Record& rec) {
    if (rec.row[0] == Value(0)) pairs++;
  });
  std::printf("  dispatch rows for order 0: %zu\n", pairs);
  return 0;
}
