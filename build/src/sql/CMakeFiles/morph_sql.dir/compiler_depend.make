# Empty compiler generated dependencies file for morph_sql.
# This may be replaced when dependencies are built.
