file(REMOVE_RECURSE
  "CMakeFiles/morph_sql.dir/executor.cc.o"
  "CMakeFiles/morph_sql.dir/executor.cc.o.d"
  "CMakeFiles/morph_sql.dir/lexer.cc.o"
  "CMakeFiles/morph_sql.dir/lexer.cc.o.d"
  "CMakeFiles/morph_sql.dir/parser.cc.o"
  "CMakeFiles/morph_sql.dir/parser.cc.o.d"
  "libmorph_sql.a"
  "libmorph_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
