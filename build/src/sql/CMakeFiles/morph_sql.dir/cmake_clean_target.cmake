file(REMOVE_RECURSE
  "libmorph_sql.a"
)
