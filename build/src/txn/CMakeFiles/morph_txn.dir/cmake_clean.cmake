file(REMOVE_RECURSE
  "CMakeFiles/morph_txn.dir/lock_manager.cc.o"
  "CMakeFiles/morph_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/morph_txn.dir/transform_locks.cc.o"
  "CMakeFiles/morph_txn.dir/transform_locks.cc.o.d"
  "CMakeFiles/morph_txn.dir/txn_manager.cc.o"
  "CMakeFiles/morph_txn.dir/txn_manager.cc.o.d"
  "libmorph_txn.a"
  "libmorph_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
