# Empty dependencies file for morph_txn.
# This may be replaced when dependencies are built.
