file(REMOVE_RECURSE
  "libmorph_txn.a"
)
