# Empty dependencies file for morph_engine.
# This may be replaced when dependencies are built.
