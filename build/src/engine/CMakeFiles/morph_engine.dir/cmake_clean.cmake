file(REMOVE_RECURSE
  "CMakeFiles/morph_engine.dir/blocking_transform.cc.o"
  "CMakeFiles/morph_engine.dir/blocking_transform.cc.o.d"
  "CMakeFiles/morph_engine.dir/checkpoint.cc.o"
  "CMakeFiles/morph_engine.dir/checkpoint.cc.o.d"
  "CMakeFiles/morph_engine.dir/database.cc.o"
  "CMakeFiles/morph_engine.dir/database.cc.o.d"
  "CMakeFiles/morph_engine.dir/recovery.cc.o"
  "CMakeFiles/morph_engine.dir/recovery.cc.o.d"
  "libmorph_engine.a"
  "libmorph_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
