file(REMOVE_RECURSE
  "libmorph_engine.a"
)
