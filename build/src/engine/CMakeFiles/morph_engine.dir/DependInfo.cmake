
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/blocking_transform.cc" "src/engine/CMakeFiles/morph_engine.dir/blocking_transform.cc.o" "gcc" "src/engine/CMakeFiles/morph_engine.dir/blocking_transform.cc.o.d"
  "/root/repo/src/engine/checkpoint.cc" "src/engine/CMakeFiles/morph_engine.dir/checkpoint.cc.o" "gcc" "src/engine/CMakeFiles/morph_engine.dir/checkpoint.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/morph_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/morph_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/recovery.cc" "src/engine/CMakeFiles/morph_engine.dir/recovery.cc.o" "gcc" "src/engine/CMakeFiles/morph_engine.dir/recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/morph_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/morph_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/morph_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/morph_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
