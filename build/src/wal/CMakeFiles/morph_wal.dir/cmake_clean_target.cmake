file(REMOVE_RECURSE
  "libmorph_wal.a"
)
