file(REMOVE_RECURSE
  "CMakeFiles/morph_wal.dir/log_record.cc.o"
  "CMakeFiles/morph_wal.dir/log_record.cc.o.d"
  "CMakeFiles/morph_wal.dir/wal.cc.o"
  "CMakeFiles/morph_wal.dir/wal.cc.o.d"
  "libmorph_wal.a"
  "libmorph_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
