# Empty compiler generated dependencies file for morph_wal.
# This may be replaced when dependencies are built.
