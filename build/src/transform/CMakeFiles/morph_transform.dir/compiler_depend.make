# Empty compiler generated dependencies file for morph_transform.
# This may be replaced when dependencies are built.
