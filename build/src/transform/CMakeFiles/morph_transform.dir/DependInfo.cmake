
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/coordinator.cc" "src/transform/CMakeFiles/morph_transform.dir/coordinator.cc.o" "gcc" "src/transform/CMakeFiles/morph_transform.dir/coordinator.cc.o.d"
  "/root/repo/src/transform/foj.cc" "src/transform/CMakeFiles/morph_transform.dir/foj.cc.o" "gcc" "src/transform/CMakeFiles/morph_transform.dir/foj.cc.o.d"
  "/root/repo/src/transform/hsplit.cc" "src/transform/CMakeFiles/morph_transform.dir/hsplit.cc.o" "gcc" "src/transform/CMakeFiles/morph_transform.dir/hsplit.cc.o.d"
  "/root/repo/src/transform/merge.cc" "src/transform/CMakeFiles/morph_transform.dir/merge.cc.o" "gcc" "src/transform/CMakeFiles/morph_transform.dir/merge.cc.o.d"
  "/root/repo/src/transform/op.cc" "src/transform/CMakeFiles/morph_transform.dir/op.cc.o" "gcc" "src/transform/CMakeFiles/morph_transform.dir/op.cc.o.d"
  "/root/repo/src/transform/split.cc" "src/transform/CMakeFiles/morph_transform.dir/split.cc.o" "gcc" "src/transform/CMakeFiles/morph_transform.dir/split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/morph_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/morph_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/morph_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/morph_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/morph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
