file(REMOVE_RECURSE
  "libmorph_transform.a"
)
