file(REMOVE_RECURSE
  "CMakeFiles/morph_transform.dir/coordinator.cc.o"
  "CMakeFiles/morph_transform.dir/coordinator.cc.o.d"
  "CMakeFiles/morph_transform.dir/foj.cc.o"
  "CMakeFiles/morph_transform.dir/foj.cc.o.d"
  "CMakeFiles/morph_transform.dir/hsplit.cc.o"
  "CMakeFiles/morph_transform.dir/hsplit.cc.o.d"
  "CMakeFiles/morph_transform.dir/merge.cc.o"
  "CMakeFiles/morph_transform.dir/merge.cc.o.d"
  "CMakeFiles/morph_transform.dir/op.cc.o"
  "CMakeFiles/morph_transform.dir/op.cc.o.d"
  "CMakeFiles/morph_transform.dir/split.cc.o"
  "CMakeFiles/morph_transform.dir/split.cc.o.d"
  "libmorph_transform.a"
  "libmorph_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
