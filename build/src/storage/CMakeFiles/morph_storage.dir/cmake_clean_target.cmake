file(REMOVE_RECURSE
  "libmorph_storage.a"
)
