file(REMOVE_RECURSE
  "CMakeFiles/morph_storage.dir/catalog.cc.o"
  "CMakeFiles/morph_storage.dir/catalog.cc.o.d"
  "CMakeFiles/morph_storage.dir/index.cc.o"
  "CMakeFiles/morph_storage.dir/index.cc.o.d"
  "CMakeFiles/morph_storage.dir/snapshot.cc.o"
  "CMakeFiles/morph_storage.dir/snapshot.cc.o.d"
  "CMakeFiles/morph_storage.dir/table.cc.o"
  "CMakeFiles/morph_storage.dir/table.cc.o.d"
  "libmorph_storage.a"
  "libmorph_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
