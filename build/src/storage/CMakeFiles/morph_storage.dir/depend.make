# Empty dependencies file for morph_storage.
# This may be replaced when dependencies are built.
