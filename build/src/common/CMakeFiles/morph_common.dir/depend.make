# Empty dependencies file for morph_common.
# This may be replaced when dependencies are built.
