file(REMOVE_RECURSE
  "libmorph_common.a"
)
