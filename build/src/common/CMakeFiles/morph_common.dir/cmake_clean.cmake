file(REMOVE_RECURSE
  "CMakeFiles/morph_common.dir/codec.cc.o"
  "CMakeFiles/morph_common.dir/codec.cc.o.d"
  "CMakeFiles/morph_common.dir/relops.cc.o"
  "CMakeFiles/morph_common.dir/relops.cc.o.d"
  "CMakeFiles/morph_common.dir/row.cc.o"
  "CMakeFiles/morph_common.dir/row.cc.o.d"
  "CMakeFiles/morph_common.dir/schema.cc.o"
  "CMakeFiles/morph_common.dir/schema.cc.o.d"
  "CMakeFiles/morph_common.dir/status.cc.o"
  "CMakeFiles/morph_common.dir/status.cc.o.d"
  "CMakeFiles/morph_common.dir/value.cc.o"
  "CMakeFiles/morph_common.dir/value.cc.o.d"
  "libmorph_common.a"
  "libmorph_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
