# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/foj_rules_test[1]_include.cmake")
include("/root/repo/build/tests/split_rules_test[1]_include.cmake")
include("/root/repo/build/tests/transform_integration_test[1]_include.cmake")
include("/root/repo/build/tests/op_test[1]_include.cmake")
include("/root/repo/build/tests/relops_property_test[1]_include.cmake")
include("/root/repo/build/tests/priority_test[1]_include.cmake")
include("/root/repo/build/tests/transform_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/split_alternative_test[1]_include.cmake")
include("/root/repo/build/tests/merge_rules_test[1]_include.cmake")
include("/root/repo/build/tests/hsplit_rules_test[1]_include.cmake")
include("/root/repo/build/tests/materialized_view_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/sql_executor_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/multigranularity_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/wal_codec_property_test[1]_include.cmake")
