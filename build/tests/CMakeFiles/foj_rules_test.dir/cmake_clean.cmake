file(REMOVE_RECURSE
  "CMakeFiles/foj_rules_test.dir/foj_rules_test.cc.o"
  "CMakeFiles/foj_rules_test.dir/foj_rules_test.cc.o.d"
  "foj_rules_test"
  "foj_rules_test.pdb"
  "foj_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foj_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
