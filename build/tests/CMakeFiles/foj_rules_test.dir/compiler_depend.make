# Empty compiler generated dependencies file for foj_rules_test.
# This may be replaced when dependencies are built.
