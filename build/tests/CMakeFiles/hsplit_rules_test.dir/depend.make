# Empty dependencies file for hsplit_rules_test.
# This may be replaced when dependencies are built.
