# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hsplit_rules_test.
