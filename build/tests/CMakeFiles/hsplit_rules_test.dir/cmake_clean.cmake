file(REMOVE_RECURSE
  "CMakeFiles/hsplit_rules_test.dir/hsplit_rules_test.cc.o"
  "CMakeFiles/hsplit_rules_test.dir/hsplit_rules_test.cc.o.d"
  "hsplit_rules_test"
  "hsplit_rules_test.pdb"
  "hsplit_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsplit_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
