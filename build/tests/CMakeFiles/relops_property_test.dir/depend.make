# Empty dependencies file for relops_property_test.
# This may be replaced when dependencies are built.
