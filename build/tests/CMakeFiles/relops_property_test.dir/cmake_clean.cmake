file(REMOVE_RECURSE
  "CMakeFiles/relops_property_test.dir/relops_property_test.cc.o"
  "CMakeFiles/relops_property_test.dir/relops_property_test.cc.o.d"
  "relops_property_test"
  "relops_property_test.pdb"
  "relops_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relops_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
