file(REMOVE_RECURSE
  "CMakeFiles/split_alternative_test.dir/split_alternative_test.cc.o"
  "CMakeFiles/split_alternative_test.dir/split_alternative_test.cc.o.d"
  "split_alternative_test"
  "split_alternative_test.pdb"
  "split_alternative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_alternative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
