# Empty dependencies file for split_alternative_test.
# This may be replaced when dependencies are built.
