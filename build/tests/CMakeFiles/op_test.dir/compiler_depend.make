# Empty compiler generated dependencies file for op_test.
# This may be replaced when dependencies are built.
