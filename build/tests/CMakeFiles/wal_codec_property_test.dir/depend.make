# Empty dependencies file for wal_codec_property_test.
# This may be replaced when dependencies are built.
