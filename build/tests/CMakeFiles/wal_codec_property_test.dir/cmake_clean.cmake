file(REMOVE_RECURSE
  "CMakeFiles/wal_codec_property_test.dir/wal_codec_property_test.cc.o"
  "CMakeFiles/wal_codec_property_test.dir/wal_codec_property_test.cc.o.d"
  "wal_codec_property_test"
  "wal_codec_property_test.pdb"
  "wal_codec_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_codec_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
