# Empty dependencies file for merge_rules_test.
# This may be replaced when dependencies are built.
