file(REMOVE_RECURSE
  "CMakeFiles/merge_rules_test.dir/merge_rules_test.cc.o"
  "CMakeFiles/merge_rules_test.dir/merge_rules_test.cc.o.d"
  "merge_rules_test"
  "merge_rules_test.pdb"
  "merge_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
