# Empty dependencies file for transform_recovery_test.
# This may be replaced when dependencies are built.
