file(REMOVE_RECURSE
  "CMakeFiles/transform_recovery_test.dir/transform_recovery_test.cc.o"
  "CMakeFiles/transform_recovery_test.dir/transform_recovery_test.cc.o.d"
  "transform_recovery_test"
  "transform_recovery_test.pdb"
  "transform_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
