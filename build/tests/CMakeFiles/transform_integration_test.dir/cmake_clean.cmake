file(REMOVE_RECURSE
  "CMakeFiles/transform_integration_test.dir/transform_integration_test.cc.o"
  "CMakeFiles/transform_integration_test.dir/transform_integration_test.cc.o.d"
  "transform_integration_test"
  "transform_integration_test.pdb"
  "transform_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
