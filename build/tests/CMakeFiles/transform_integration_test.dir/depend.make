# Empty dependencies file for transform_integration_test.
# This may be replaced when dependencies are built.
