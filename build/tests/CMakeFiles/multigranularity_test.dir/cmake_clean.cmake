file(REMOVE_RECURSE
  "CMakeFiles/multigranularity_test.dir/multigranularity_test.cc.o"
  "CMakeFiles/multigranularity_test.dir/multigranularity_test.cc.o.d"
  "multigranularity_test"
  "multigranularity_test.pdb"
  "multigranularity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigranularity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
