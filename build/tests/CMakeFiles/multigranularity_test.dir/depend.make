# Empty dependencies file for multigranularity_test.
# This may be replaced when dependencies are built.
