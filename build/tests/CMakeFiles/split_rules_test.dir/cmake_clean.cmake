file(REMOVE_RECURSE
  "CMakeFiles/split_rules_test.dir/split_rules_test.cc.o"
  "CMakeFiles/split_rules_test.dir/split_rules_test.cc.o.d"
  "split_rules_test"
  "split_rules_test.pdb"
  "split_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
