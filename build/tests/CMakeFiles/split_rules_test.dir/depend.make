# Empty dependencies file for split_rules_test.
# This may be replaced when dependencies are built.
