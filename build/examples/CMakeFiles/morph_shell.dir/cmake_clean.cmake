file(REMOVE_RECURSE
  "CMakeFiles/morph_shell.dir/morph_shell.cpp.o"
  "CMakeFiles/morph_shell.dir/morph_shell.cpp.o.d"
  "morph_shell"
  "morph_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
