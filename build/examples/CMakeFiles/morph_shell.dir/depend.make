# Empty dependencies file for morph_shell.
# This may be replaced when dependencies are built.
