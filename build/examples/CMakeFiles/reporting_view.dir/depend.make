# Empty dependencies file for reporting_view.
# This may be replaced when dependencies are built.
