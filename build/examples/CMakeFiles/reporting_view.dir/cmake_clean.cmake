file(REMOVE_RECURSE
  "CMakeFiles/reporting_view.dir/reporting_view.cpp.o"
  "CMakeFiles/reporting_view.dir/reporting_view.cpp.o.d"
  "reporting_view"
  "reporting_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reporting_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
