file(REMOVE_RECURSE
  "CMakeFiles/many_to_many_catalog.dir/many_to_many_catalog.cpp.o"
  "CMakeFiles/many_to_many_catalog.dir/many_to_many_catalog.cpp.o.d"
  "many_to_many_catalog"
  "many_to_many_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/many_to_many_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
