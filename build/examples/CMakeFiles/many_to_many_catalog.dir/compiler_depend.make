# Empty compiler generated dependencies file for many_to_many_catalog.
# This may be replaced when dependencies are built.
