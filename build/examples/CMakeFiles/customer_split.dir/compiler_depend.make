# Empty compiler generated dependencies file for customer_split.
# This may be replaced when dependencies are built.
