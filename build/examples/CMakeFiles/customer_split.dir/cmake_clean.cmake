file(REMOVE_RECURSE
  "CMakeFiles/customer_split.dir/customer_split.cpp.o"
  "CMakeFiles/customer_split.dir/customer_split.cpp.o.d"
  "customer_split"
  "customer_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/customer_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
