file(REMOVE_RECURSE
  "CMakeFiles/partition_archive.dir/partition_archive.cpp.o"
  "CMakeFiles/partition_archive.dir/partition_archive.cpp.o.d"
  "partition_archive"
  "partition_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
