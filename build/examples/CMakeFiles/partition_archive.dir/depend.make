# Empty dependencies file for partition_archive.
# This may be replaced when dependencies are built.
