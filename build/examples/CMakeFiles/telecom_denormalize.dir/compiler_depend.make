# Empty compiler generated dependencies file for telecom_denormalize.
# This may be replaced when dependencies are built.
