file(REMOVE_RECURSE
  "CMakeFiles/telecom_denormalize.dir/telecom_denormalize.cpp.o"
  "CMakeFiles/telecom_denormalize.dir/telecom_denormalize.cpp.o.d"
  "telecom_denormalize"
  "telecom_denormalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telecom_denormalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
