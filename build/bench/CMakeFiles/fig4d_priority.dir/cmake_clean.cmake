file(REMOVE_RECURSE
  "CMakeFiles/fig4d_priority.dir/fig4d_priority.cc.o"
  "CMakeFiles/fig4d_priority.dir/fig4d_priority.cc.o.d"
  "fig4d_priority"
  "fig4d_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4d_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
