# Empty dependencies file for fig4d_priority.
# This may be replaced when dependencies are built.
