# Empty compiler generated dependencies file for blocking_baseline.
# This may be replaced when dependencies are built.
