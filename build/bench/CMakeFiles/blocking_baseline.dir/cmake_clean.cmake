file(REMOVE_RECURSE
  "CMakeFiles/blocking_baseline.dir/blocking_baseline.cc.o"
  "CMakeFiles/blocking_baseline.dir/blocking_baseline.cc.o.d"
  "blocking_baseline"
  "blocking_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
