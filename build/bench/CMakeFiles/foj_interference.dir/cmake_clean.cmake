file(REMOVE_RECURSE
  "CMakeFiles/foj_interference.dir/foj_interference.cc.o"
  "CMakeFiles/foj_interference.dir/foj_interference.cc.o.d"
  "foj_interference"
  "foj_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foj_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
