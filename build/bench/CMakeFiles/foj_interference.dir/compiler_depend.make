# Empty compiler generated dependencies file for foj_interference.
# This may be replaced when dependencies are built.
