file(REMOVE_RECURSE
  "CMakeFiles/morph_bench_harness.dir/harness/workload.cc.o"
  "CMakeFiles/morph_bench_harness.dir/harness/workload.cc.o.d"
  "libmorph_bench_harness.a"
  "libmorph_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morph_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
