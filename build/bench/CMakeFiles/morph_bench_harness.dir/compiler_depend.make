# Empty compiler generated dependencies file for morph_bench_harness.
# This may be replaced when dependencies are built.
