
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/harness/workload.cc" "bench/CMakeFiles/morph_bench_harness.dir/harness/workload.cc.o" "gcc" "bench/CMakeFiles/morph_bench_harness.dir/harness/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transform/CMakeFiles/morph_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/morph_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/morph_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/morph_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/morph_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/morph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
