file(REMOVE_RECURSE
  "libmorph_bench_harness.a"
)
