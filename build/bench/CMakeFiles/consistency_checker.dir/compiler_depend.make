# Empty compiler generated dependencies file for consistency_checker.
# This may be replaced when dependencies are built.
