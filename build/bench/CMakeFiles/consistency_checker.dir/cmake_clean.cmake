file(REMOVE_RECURSE
  "CMakeFiles/consistency_checker.dir/consistency_checker.cc.o"
  "CMakeFiles/consistency_checker.dir/consistency_checker.cc.o.d"
  "consistency_checker"
  "consistency_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
