file(REMOVE_RECURSE
  "CMakeFiles/sync_latency.dir/sync_latency.cc.o"
  "CMakeFiles/sync_latency.dir/sync_latency.cc.o.d"
  "sync_latency"
  "sync_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
