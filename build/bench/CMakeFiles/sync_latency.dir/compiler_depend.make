# Empty compiler generated dependencies file for sync_latency.
# This may be replaced when dependencies are built.
