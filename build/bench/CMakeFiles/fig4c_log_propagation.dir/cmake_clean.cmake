file(REMOVE_RECURSE
  "CMakeFiles/fig4c_log_propagation.dir/fig4c_log_propagation.cc.o"
  "CMakeFiles/fig4c_log_propagation.dir/fig4c_log_propagation.cc.o.d"
  "fig4c_log_propagation"
  "fig4c_log_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_log_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
