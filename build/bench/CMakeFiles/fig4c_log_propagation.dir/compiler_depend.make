# Empty compiler generated dependencies file for fig4c_log_propagation.
# This may be replaced when dependencies are built.
