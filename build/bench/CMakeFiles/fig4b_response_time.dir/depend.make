# Empty dependencies file for fig4b_response_time.
# This may be replaced when dependencies are built.
