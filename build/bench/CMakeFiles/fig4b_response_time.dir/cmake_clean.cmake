file(REMOVE_RECURSE
  "CMakeFiles/fig4b_response_time.dir/fig4b_response_time.cc.o"
  "CMakeFiles/fig4b_response_time.dir/fig4b_response_time.cc.o.d"
  "fig4b_response_time"
  "fig4b_response_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
