# Empty dependencies file for fig4a_initial_population.
# This may be replaced when dependencies are built.
