file(REMOVE_RECURSE
  "CMakeFiles/fig4a_initial_population.dir/fig4a_initial_population.cc.o"
  "CMakeFiles/fig4a_initial_population.dir/fig4a_initial_population.cc.o.d"
  "fig4a_initial_population"
  "fig4a_initial_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_initial_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
